"""OpenFlow device drivers: the bridge between yancfs and switches.

A driver (paper section 4.1) is "a thin component which speaks the
programming protocol supported by a collection of switches".  Each
:class:`OpenFlowDriver` instance speaks exactly one protocol version over
per-switch control channels, and interacts with the rest of the system
*only through the file system*:

* committed flow directories (version increments) become flow-mods;
* flow directory removal becomes a strict delete;
* ``config.port_down`` writes become port-mods;
* packet-ins become event directories in every subscribed app buffer;
* flow-removed/port-status messages and periodic stats polls update the
  corresponding files.

Because all driver state that matters lives in the tree, a switch can be
detached from an OpenFlow 1.0 driver and attached to a 1.3 driver live:
the new driver re-reads the committed flows and re-asserts them (paper:
"nodes in such a system can therefore be gradually upgraded, live, to
newer protocols").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.controlchannel import ControlConnection, connect
from repro.dataplane.match import Match
from repro.dataplane.switch import SwitchSim
from repro.openflow import messages as m
from repro.openflow.agent import SwitchAgent
from repro.openflow.codec import codec_for, negotiate, peek_version
from repro.openflow.of10 import VERSION as OF10_VERSION
from repro.openflow.of10 import CodecError
from repro.openflow.of13 import VERSION as OF13_VERSION
from repro.proc.process import Process
from repro.sim import Simulator
from repro.vfs.errors import FsError
from repro.vfs.notify import EventMask
from repro.vfs.syscalls import Syscalls
from repro.yancfs.client import YancClient

_FLOW_WATCH_MASK = EventMask.IN_MODIFY | EventMask.IN_CLOSE_WRITE
_DIR_WATCH_MASK = (
    EventMask.IN_CREATE | EventMask.IN_DELETE | EventMask.IN_MOVED_FROM | EventMask.IN_MOVED_TO
)

#: Maximum packet-in directories allowed to pile up in one app buffer
#: before the driver starts dropping (the "private buffer" backpressure).
MAX_PENDING_EVENTS = 256


@dataclass
class _FlowState:
    """What the driver believes is installed for one flow directory."""

    name: str
    version: int = 0
    match: Match | None = None
    priority: int = 0x8000


@dataclass
class SwitchBinding:
    """One driver <-> switch session."""

    driver: "OpenFlowDriver"
    switch: SwitchSim
    conn: ControlConnection
    agent: SwitchAgent
    fs_name: str = ""
    dpid: int = 0
    version: int | None = None
    ready: bool = False
    flows: dict[str, _FlowState] = field(default_factory=dict)
    event_apps: list[str] = field(default_factory=list)
    _suppressed: set[str] = field(default_factory=set)
    _rx: bytes = b""
    _xid: int = 0
    _event_seq: int = 0
    dropped_events: int = 0

    # -- wire ------------------------------------------------------------------

    def send(self, msg: m.Message) -> None:
        """Encode and transmit under the session's (or driver's) version."""
        if msg.xid == 0:
            self._xid += 1
            msg.xid = self._xid
        version = self.version if self.version is not None else self.driver.version
        self.conn.send(codec_for(version).encode(msg))

    def on_data(self, data: bytes) -> None:
        """Reassemble and dispatch incoming wire messages."""
        self._rx += data
        while len(self._rx) >= 8:
            length = int.from_bytes(self._rx[2:4], "big")
            if len(self._rx) < length:
                return
            try:
                msg, self._rx = codec_for(peek_version(self._rx)).decode(self._rx)
            except CodecError:
                self._rx = self._rx[length:]
                continue
            self.driver.handle_message(self, msg)

    def close(self) -> None:
        """Tear the session down (file-system state is left intact)."""
        self.agent.detach()
        self.conn.close()


class OpenFlowDriver(Process):
    """One driver process for one protocol version.

    The run loop (epoll over the driver's watches), watch bookkeeping,
    periodic tasks, and crash containment are inherited from
    :class:`~repro.proc.process.Process`; a driver is live — running, as
    a process — from construction.
    """

    def __init__(
        self,
        sc: "Syscalls | Process",
        sim: Simulator,
        *,
        version: int = OF10_VERSION,
        name: str = "",
        root: str = "/net",
        channel_latency: float = 5e-4,
        stats_interval: float = 1.0,
    ) -> None:
        if version not in (OF10_VERSION, OF13_VERSION):
            raise ValueError(f"unsupported driver version {version:#x}")
        driver_name = name or f"of{'10' if version == OF10_VERSION else '13'}-driver"
        super().__init__(sc, sim, name=driver_name)
        self.version = version
        self.name = driver_name
        self.yc = YancClient(self.sc, root)
        self.channel_latency = channel_latency
        self.stats_interval = stats_interval
        self.bindings: dict[int, SwitchBinding] = {}
        self._uring = None  # lazy: created on the first batched fan-out
        self._stats_task = None
        self._root_watch_added = False
        self.flow_mods_sent = 0
        self.packet_ins_handled = 0
        self.start()

    # -- lifecycle ---------------------------------------------------------------

    def attach_switch(self, switch: SwitchSim) -> SwitchBinding:
        """Open a session to ``switch`` and (on features) populate the tree."""
        driver_end, agent_end = connect(
            self.sim,
            latency=self.channel_latency,
            counters=self.sc.vfs.counters,
            names=(f"{self.name}->{switch.name}", f"{switch.name}->{self.name}"),
        )
        agent = SwitchAgent(switch, agent_end)
        binding = SwitchBinding(driver=self, switch=switch, conn=driver_end, agent=agent)
        driver_end.on_data = binding.on_data
        agent.start()
        binding.send(m.Hello(version=self.version))
        binding.send(m.FeaturesRequest())
        self.bindings[switch.dpid] = binding
        if self._stats_task is None and self.stats_interval > 0:
            self._stats_task = self.every(self.stats_interval, self._poll_stats)
        return binding

    def detach_switch(self, dpid: int) -> None:
        """Close the session; the switch's subtree stays for the next driver."""
        binding = self.bindings.pop(dpid, None)
        if binding is None:
            return
        binding.close()
        for wd, ctx in list(self._watch_ctx.items()):
            if len(ctx) > 1 and ctx[1] == dpid:
                del self._watch_ctx[wd]
                self.ino.rm_watch(wd)

    def stop(self) -> None:
        """Detach every switch, stop periodic work, and exit."""
        for dpid in list(self.bindings):
            self.detach_switch(dpid)
        self._stats_task = None
        self._root_watch_added = False
        super().stop()

    # -- event dispatch -----------------------------------------------------------

    def on_event(self, ctx: tuple, event) -> None:
        kind = ctx[0]
        if kind == "switches_root":
            self._on_root_event(event)
        elif kind == "flows":
            self._on_flows_dir_event(ctx[1], event)
        elif kind == "flow":
            self._on_flow_event(ctx[1], ctx[2], event)
        elif kind == "port":
            self._on_port_event(ctx[1], ctx[2], event)
        elif kind == "events":
            self._on_events_dir_event(ctx[1], event)
        elif kind == "pktout":
            self._on_packet_out_event(ctx[1], event)

    # -- FS -> wire --------------------------------------------------------------------

    def _on_root_event(self, event) -> None:
        if event.mask & EventMask.IN_MOVED_TO and event.name:
            # A switch directory was renamed; adopt the new name.
            for binding in self.bindings.values():
                if binding.ready and not self.sc.exists(self.yc.switch_path(binding.fs_name)):
                    try:
                        if self.yc.switch_dpid(event.name) == binding.dpid:
                            binding.fs_name = event.name
                    except FsError:
                        continue

    def _on_flows_dir_event(self, dpid: int, event) -> None:
        binding = self.bindings.get(dpid)
        if binding is None or event.name is None:
            return
        if event.mask & (EventMask.IN_CREATE | EventMask.IN_MOVED_TO):
            path = self.yc.flow_path(binding.fs_name, event.name)
            self.watch(path, _FLOW_WATCH_MASK, ("flow", dpid, event.name))
            binding.flows.setdefault(event.name, _FlowState(name=event.name))
            # A moved-in flow may already be committed.
            self._sync_flow(binding, event.name)
        elif event.mask & (EventMask.IN_DELETE | EventMask.IN_MOVED_FROM):
            if event.name in binding._suppressed:
                binding._suppressed.discard(event.name)
                binding.flows.pop(event.name, None)
                return
            state = binding.flows.pop(event.name, None)
            if state is not None and state.match is not None:
                binding.send(
                    m.FlowMod(match=state.match, command=m.FlowModCommand.DELETE_STRICT, priority=state.priority)
                )
                self.flow_mods_sent += 1

    def _on_flow_event(self, dpid: int, flow_name: str, event) -> None:
        # IN_CLOSE_WRITE covers the echo-style file path; IN_MODIFY also
        # catches direct store writes (the libyanc fastpath), which never
        # open file handles.
        if event.name != "version":
            return
        binding = self.bindings.get(dpid)
        if binding is not None:
            self._sync_flow(binding, flow_name)

    def _sync_flow(self, binding: SwitchBinding, flow_name: str) -> None:
        try:
            spec = self.yc.read_flow(binding.fs_name, flow_name)
        except FsError:
            return
        state = binding.flows.setdefault(flow_name, _FlowState(name=flow_name))
        if spec.version <= state.version:
            return
        if state.match is not None and (state.match != spec.match or state.priority != spec.priority):
            binding.send(
                m.FlowMod(match=state.match, command=m.FlowModCommand.DELETE_STRICT, priority=state.priority)
            )
            self.flow_mods_sent += 1
        binding.send(
            m.FlowMod(
                match=spec.match,
                command=m.FlowModCommand.ADD,
                actions=list(spec.actions),
                priority=spec.priority,
                idle_timeout=int(spec.idle_timeout),
                hard_timeout=int(spec.hard_timeout),
                cookie=spec.cookie,
                send_flow_rem=True,
            )
        )
        self.flow_mods_sent += 1
        state.version = spec.version
        state.match = spec.match
        state.priority = spec.priority

    def _on_port_event(self, dpid: int, port_name: str, event) -> None:
        if event.name != "config.port_down" or not event.mask & EventMask.IN_CLOSE_WRITE:
            return
        binding = self.bindings.get(dpid)
        if binding is None:
            return
        try:
            down = self.yc.port_is_down(binding.fs_name, port_name)
            port_no = int(port_name.rsplit("_", 1)[-1])
        except (FsError, ValueError):
            return
        binding.send(m.PortMod(port_no=port_no, down=down))

    def _on_events_dir_event(self, dpid: int, event) -> None:
        binding = self.bindings.get(dpid)
        if binding is None or event.name is None:
            return
        if event.mask & (EventMask.IN_CREATE | EventMask.IN_MOVED_TO):
            if event.name not in binding.event_apps:
                binding.event_apps.append(event.name)
        elif event.mask & (EventMask.IN_DELETE | EventMask.IN_MOVED_FROM):
            if event.name in binding.event_apps:
                binding.event_apps.remove(event.name)

    def _on_packet_out_event(self, dpid: int, event) -> None:
        """Consume one packet_out spool entry (see PacketOutDir docs).

        The spool filename encodes where the frame goes: tokens separated
        by dots — a port number / ``flood`` / ``all``, optionally ``inN``
        (the logical in-port) and ``bN`` (release buffered packet N).
        """
        if event.name is None or not event.mask & EventMask.IN_CLOSE_WRITE:
            return
        binding = self.bindings.get(dpid)
        if binding is None:
            return
        from repro.dataplane.actions import ALL as PORT_ALL
        from repro.dataplane.actions import FLOOD as PORT_FLOOD
        from repro.dataplane.actions import Output

        path = f"{self.yc.switch_path(binding.fs_name)}/packet_out/{event.name}"
        try:
            data = self.sc.read_bytes(path)
            self.sc.unlink(path)
        except FsError:
            return
        buffer_id = m.NO_BUFFER
        in_port = 0
        ports: list[int] = []
        for token in event.name.split("."):
            if token == "flood":
                ports.append(PORT_FLOOD)
            elif token == "all":
                ports.append(PORT_ALL)
            elif token.startswith("in") and token[2:].isdigit():
                in_port = int(token[2:])
            elif token.startswith("b") and token[1:].isdigit():
                buffer_id = int(token[1:])
            elif token.startswith("p") and token[1:].isdigit():
                ports.append(int(token[1:]))
        if not ports:
            return  # unroutable spool entry: discarded
        binding.send(
            m.PacketOut(
                buffer_id=buffer_id,
                in_port=in_port,
                actions=[Output(port) for port in ports],
                data=data,
            )
        )

    # -- wire -> FS ---------------------------------------------------------------------

    def handle_message(self, binding: SwitchBinding, msg: m.Message) -> None:
        """Dispatch one message arriving from a switch agent."""
        if isinstance(msg, m.Hello):
            binding.version = negotiate(self.version, msg.version)
        elif isinstance(msg, m.FeaturesReply):
            self._on_features(binding, msg)
        elif isinstance(msg, m.PortDescReply):
            for port in msg.ports:
                self._ensure_port(binding, port)
        elif isinstance(msg, m.PacketIn):
            self._on_packet_in(binding, msg)
        elif isinstance(msg, m.FlowRemoved):
            self._on_flow_removed(binding, msg)
        elif isinstance(msg, m.PortStatus):
            self._on_port_status(binding, msg)
        elif isinstance(msg, m.PortStatsReply):
            self._on_port_stats(binding, msg)
        elif isinstance(msg, m.FlowStatsReply):
            self._on_flow_stats(binding, msg)
        elif isinstance(msg, m.EchoRequest):
            binding.send(m.EchoReply(payload=msg.payload, xid=msg.xid))

    def _on_features(self, binding: SwitchBinding, msg: m.FeaturesReply) -> None:
        binding.dpid = msg.dpid
        binding.fs_name = self._find_existing_switch(msg.dpid) or f"sw{msg.dpid}"
        path = self.yc.switch_path(binding.fs_name)
        adopted = self.sc.exists(path)
        if not adopted:
            self.yc.create_switch(binding.fs_name, dpid=msg.dpid)
        self.sc.write_text(f"{path}/num_buffers", str(msg.n_buffers))
        self.sc.write_text(f"{path}/capabilities", f"{msg.capabilities:#x}")
        self.sc.write_text(f"{path}/actions", "output,set_dl,set_nw,set_tp,vlan")
        if not self._root_watch_added:
            self.watch(f"{self.yc.root}/switches", _DIR_WATCH_MASK, ("switches_root",))
            self._root_watch_added = True
        self.watch(f"{path}/flows", _DIR_WATCH_MASK, ("flows", msg.dpid))
        self.watch(f"{path}/events", _DIR_WATCH_MASK, ("events", msg.dpid))
        self.watch(f"{path}/packet_out", _DIR_WATCH_MASK | EventMask.IN_CLOSE_WRITE, ("pktout", msg.dpid))
        for port in msg.ports:
            self._ensure_port(binding, port)
        if binding.version == OF13_VERSION:
            binding.send(m.PortDescRequest())
        binding.ready = True
        if adopted:
            self._adopt_existing_state(binding)

    def _find_existing_switch(self, dpid: int) -> str | None:
        try:
            names = self.yc.switches()
        except FsError:
            return None
        for name in names:
            try:
                if self.yc.switch_dpid(name) == dpid:
                    return name
            except (FsError, ValueError):
                continue
        return None

    def _adopt_existing_state(self, binding: SwitchBinding) -> None:
        """Live upgrade: re-assert committed flows, re-learn app buffers."""
        for flow_name in self.yc.flows(binding.fs_name):
            self.watch(
                self.yc.flow_path(binding.fs_name, flow_name),
                _FLOW_WATCH_MASK,
                ("flow", binding.dpid, flow_name),
            )
            binding.flows.setdefault(flow_name, _FlowState(name=flow_name))
            self._sync_flow(binding, flow_name)
        try:
            apps = self.sc.listdir(f"{self.yc.switch_path(binding.fs_name)}/events")
        except FsError:
            apps = []
        binding.event_apps = list(apps)
        for port_name in self.yc.ports(binding.fs_name):
            self.watch(
                self.yc.port_path(binding.fs_name, port_name),
                _FLOW_WATCH_MASK,
                ("port", binding.dpid, port_name),
            )

    def _ensure_port(self, binding: SwitchBinding, port: m.PortDesc) -> None:
        name = f"port_{port.port_no}"
        path = self.yc.port_path(binding.fs_name, name)
        if not self.sc.exists(path):
            self.yc.create_port(binding.fs_name, port.port_no)
            self.watch(path, _FLOW_WATCH_MASK, ("port", binding.dpid, name))
        from repro.netpkt.addr import MacAddress

        self.sc.write_text(f"{path}/hw_addr", str(MacAddress(port.hw_addr)))
        self.sc.write_text(f"{path}/name", port.name)
        self.sc.write_text(f"{path}/config.port_status", "down" if port.link_down else "up")

    def _ring(self):
        """The driver's submission ring (one per driver, like its epoll fd)."""
        if self._uring is None:
            self._uring = self.sc.io_uring_setup(entries=1024)
        return self._uring

    def _on_packet_in(self, binding: SwitchBinding, msg: m.PacketIn) -> None:
        """Concurrently feed the packet-in to every subscribed app (§3.5).

        Two batched crossings regardless of fan-out: one ``io_uring_enter``
        lists every app buffer (the backpressure probe that used to be a
        listdir *per app*), one publishes to every buffer with room (the
        maildir assemble-and-rename that used to be 17 syscalls per app).
        """
        self.packet_ins_handled += 1
        binding._event_seq += 1
        reason = "no_match" if msg.reason is m.PacketInReasonWire.NO_MATCH else "action"
        apps = list(binding.event_apps)
        if not apps:
            return
        ring = self._ring()
        for app in apps:
            if ring.sq_pending >= ring.entries:
                ring.submit()
            ring.prep("listdir", self.yc.events_path(binding.fs_name, app), user_data=app)
        ring.submit()
        targets = []
        for cqe in ring.completions():
            if not cqe.ok:
                continue  # buffer vanished: the app unsubscribed mid-flight
            if len(cqe.result) >= MAX_PENDING_EVENTS:
                binding.dropped_events += 1
                continue
            targets.append(cqe.user_data)
        if not targets:
            return
        self.yc.write_packet_in_batched(
            binding.fs_name,
            targets,
            binding._event_seq,
            in_port=msg.in_port,
            reason=reason,
            buffer_id=msg.buffer_id,
            total_len=msg.total_len,
            data=msg.data,
            uring=ring,
        )

    def _on_flow_removed(self, binding: SwitchBinding, msg: m.FlowRemoved) -> None:
        if msg.reason is m.FlowRemovedReasonWire.DELETE:
            return  # we initiated it; the FS is already authoritative
        for name, state in list(binding.flows.items()):
            if state.match == msg.match and state.priority == msg.priority:
                binding._suppressed.add(name)
                try:
                    self.yc.delete_flow(binding.fs_name, name)
                except FsError:
                    binding._suppressed.discard(name)
                binding.flows.pop(name, None)
                return

    def _on_port_status(self, binding: SwitchBinding, msg: m.PortStatus) -> None:
        if not binding.ready:
            return
        name = f"port_{msg.port.port_no}"
        path = self.yc.port_path(binding.fs_name, name)
        if msg.reason is m.PortStatusReason.DELETE:
            if self.sc.exists(path):
                self.sc.rmdir(path)
            return
        if not self.sc.exists(path):
            self._ensure_port(binding, msg.port)
        self.sc.write_text(f"{path}/config.port_status", "down" if msg.port.link_down else "up")

    def _poll_stats(self) -> None:
        for binding in self.bindings.values():
            if binding.ready:
                binding.send(m.PortStatsRequest())
                binding.send(m.FlowStatsRequest())

    def _on_port_stats(self, binding: SwitchBinding, msg: m.PortStatsReply) -> None:
        writes = []
        for entry in msg.entries:
            base = f"{self.yc.port_path(binding.fs_name, entry.port_no)}/counters"
            if not self.sc.exists(base):
                continue
            writes.append((f"{base}/rx_packets", str(entry.rx_packets)))
            writes.append((f"{base}/tx_packets", str(entry.tx_packets)))
            writes.append((f"{base}/rx_bytes", str(entry.rx_bytes)))
            writes.append((f"{base}/tx_bytes", str(entry.tx_bytes)))
            writes.append((f"{base}/tx_dropped", str(entry.tx_dropped)))
        self._batch_writes(writes)

    def _on_flow_stats(self, binding: SwitchBinding, msg: m.FlowStatsReply) -> None:
        by_key = {(state.match, state.priority): name for name, state in binding.flows.items()}
        writes = []
        for entry in msg.entries:
            name = by_key.get((entry.match, entry.priority))
            if name is None:
                continue
            base = f"{self.yc.flow_path(binding.fs_name, name)}/counters"
            if not self.sc.exists(base):
                continue
            writes.append((f"{base}/packet_count", str(entry.packet_count)))
            writes.append((f"{base}/byte_count", str(entry.byte_count)))
        self._batch_writes(writes)

    def _batch_writes(self, writes: list[tuple[str, str]]) -> None:
        """Flush a periodic stats sweep in one crossing instead of N."""
        if not writes:
            return
        ring = self._ring()
        for path, text in writes:
            if ring.sq_pending + 3 > ring.entries:
                ring.submit()
            ring.prep_write_file(path, text.encode())
        ring.submit()
        ring.completions()  # reap: stats writes are fire-and-forget
