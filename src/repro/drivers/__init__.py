"""Device drivers (paper section 4.1).

One :class:`OpenFlowDriver` per protocol version; switches attach to
whichever driver speaks their protocol and can be migrated live.
"""

from repro.drivers.openflow_driver import (
    MAX_PENDING_EVENTS,
    OpenFlowDriver,
    SwitchBinding,
)
from repro.openflow.of10 import VERSION as OF10_VERSION
from repro.openflow.of13 import VERSION as OF13_VERSION

__all__ = [
    "MAX_PENDING_EVENTS",
    "OpenFlowDriver",
    "SwitchBinding",
    "OF10_VERSION",
    "OF13_VERSION",
]
