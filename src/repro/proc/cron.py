"""Interval cron on the simulator clock.

The cron daemon is itself a :class:`~repro.proc.process.Process`: register
it with the host's process table and it shows up in ``/proc`` with a PID
like every other daemon, and its scheduled runs are charged to its cgroup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.proc.process import Process
from repro.sim import Simulator

if TYPE_CHECKING:
    from repro.vfs.syscalls import Syscalls


@dataclass
class CronJob:
    """One scheduled job.

    ``last_error`` holds the exception raised by the most recent failed
    run (None after a successful run), so operators can see *why* a job is
    failing instead of just watching ``failures`` climb.
    """

    name: str
    interval: float
    fn: Callable[[], None]
    runs: int = 0
    failures: int = 0
    last_run: float = -1.0
    last_error: BaseException | None = None
    _task: object = field(default=None, repr=False)


class Cron(Process):
    """A cron daemon: named periodic jobs with failure isolation.

    A job that raises is counted as failed and keeps its schedule — one
    bad run never kills the daemon (or other jobs), which is exactly why
    the paper wants the auditor *outside* the controller process.
    """

    def __init__(self, sim: Simulator, *, ctx: "Syscalls | Process | None" = None, name: str = "cron") -> None:
        super().__init__(ctx, sim, name=name)
        self.jobs: dict[str, CronJob] = {}
        self.start()

    def on_start(self) -> None:
        """Re-arm jobs whose task died: a crash stops every periodic task,
        but the job table survives, so a supervised restart must come back
        with the schedule intact instead of a silently empty daemon."""
        for job in self.jobs.values():
            task = job._task
            if task is None or task.stopped:  # type: ignore[attr-defined]
                job._task = self.every(job.interval, lambda j=job: self._run(j))

    def add_job(self, name: str, interval: float, fn: Callable[[], None], *, start_delay: float | None = None) -> CronJob:
        """Schedule ``fn`` every ``interval`` seconds."""
        if name in self.jobs:
            raise ValueError(f"duplicate cron job {name!r}")
        job = CronJob(name=name, interval=interval, fn=fn)
        job._task = self.every(interval, lambda: self._run(job), start_delay=start_delay)
        self.jobs[name] = job
        return job

    def remove_job(self, name: str) -> None:
        """Unschedule a job."""
        job = self.jobs.pop(name, None)
        if job is not None and job._task is not None:
            job._task.stop()  # type: ignore[attr-defined]

    def _run(self, job: CronJob) -> None:
        job.last_run = self.sim.now
        try:
            job.fn()
            job.runs += 1
            job.last_error = None
        except Exception as exc:
            # Failure isolation: the job keeps its schedule, but the error
            # is recorded, not swallowed.
            job.failures += 1
            job.last_error = exc

    def stop(self) -> None:
        """Unschedule everything and exit."""
        for name in list(self.jobs):
            self.remove_job(name)
        super().stop()
