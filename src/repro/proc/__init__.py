"""Process-management substrates: cron scheduling and control groups.

The paper leans on stock Linux process machinery: cron for occasional
programs like the auditor (§2) and cgroups for resource management (§5.3).
Both are reproduced against the simulator clock.
"""

from repro.proc.cron import Cron, CronJob
from repro.proc.cgroups import Cgroup, CgroupManager, ResourceLimitExceeded

__all__ = ["Cron", "CronJob", "Cgroup", "CgroupManager", "ResourceLimitExceeded"]
