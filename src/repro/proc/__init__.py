"""Process management: the process runtime, cron, and control groups.

The paper leans on stock Linux process machinery: applications run as
ordinary supervised processes (§2, §5.3), cron covers occasional programs
like the auditor (§2), and cgroups provide resource management (§5.3).
All of it is reproduced against the simulator clock.
"""

from repro.proc.cgroups import Cgroup, CgroupManager, ResourceLimitExceeded
from repro.proc.cron import Cron, CronJob
from repro.proc.process import (
    NEVER,
    ON_CRASH,
    ProcFs,
    Process,
    ProcessTable,
    ProcState,
    RestartPolicy,
    Supervisor,
    WAKEUP_LATENCY,
)

__all__ = [
    "Cron",
    "CronJob",
    "Cgroup",
    "CgroupManager",
    "ResourceLimitExceeded",
    "NEVER",
    "ON_CRASH",
    "ProcFs",
    "Process",
    "ProcessTable",
    "ProcState",
    "RestartPolicy",
    "Supervisor",
    "WAKEUP_LATENCY",
]
