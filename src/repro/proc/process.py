"""The process runtime: PIDs, an epoll run loop, supervision, /proc.

The paper's central bet (sections 2 and 5.3) is that network applications
are *ordinary OS processes*: they get scheduling, isolation, resource
accounting, and fault containment from the operating system instead of
from a controller framework.  This module reproduces that machinery on
the simulator:

* :class:`Process` — owns a :class:`~repro.vfs.syscalls.Syscalls`
  context, an inotify descriptor, and an epoll set; a single simulator-
  driven run loop parks in ``epoll_wait`` and dispatches events, so every
  watch a process holds shares one wakeup instead of one callback each.
  A raising handler *crashes the process* (state, counters, teardown) —
  it never unwinds into the simulator, so one faulty app cannot stall
  the controller.
* :class:`Supervisor` — per-process restart policy: never, or on-crash
  with exponential backoff up to a cap (and an optional restart budget).
* :class:`ProcessTable` — assigns PIDs, places every process in the
  cgroup hierarchy (scheduled CPU and syscall time are charged to its
  group), and publishes ``/proc/<pid>/{status,cmdline,cgroup}`` through
  a mountable :class:`ProcFs`, readable with the ordinary shell toolbox.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Callable

from repro.proc.cgroups import CgroupManager, ResourceLimitExceeded
from repro.vfs.cred import ROOT, Credentials
from repro.vfs.errors import FsError
from repro.vfs.inode import DirInode, FileInode, Filesystem
from repro.vfs.notify import EventMask, Inotify, NotifyEvent
from repro.vfs.poll import EPOLL_CTL_ADD, Epoll

if TYPE_CHECKING:
    from repro.perf.meter import SyscallMeter
    from repro.sim import Simulator
    from repro.vfs.syscalls import Syscalls

__all__ = [
    "ProcState",
    "RestartPolicy",
    "NEVER",
    "ON_CRASH",
    "Process",
    "Supervisor",
    "ProcessTable",
    "ProcFs",
    "WAKEUP_LATENCY",
]

#: Scheduling latency between an event arriving and the owning process
#: being dispatched (the same 10 microseconds the per-instance wakeup
#: plumbing used to hard-code in every app and driver).
WAKEUP_LATENCY = 1e-5


class ProcState(Enum):
    """Where a process is in its lifecycle."""

    READY = "ready"  # runnable: created, or a wakeup is queued
    BLOCKED = "blocked"  # parked in epoll_wait for file-system events
    EXITED = "exited"  # stopped cleanly
    CRASHED = "crashed"  # an event handler or task raised


@dataclass(frozen=True)
class RestartPolicy:
    """What the supervisor does when a process crashes.

    ``backoff`` doubles per consecutive crash up to ``backoff_cap``, so a
    persistently faulty app degrades to a bounded restart rate instead of
    a busy crash loop.  ``max_restarts`` (None = unlimited) caps the total
    number of supervised restarts.
    """

    mode: str = "never"  # "never" | "on-crash"
    backoff: float = 0.05
    backoff_cap: float = 2.0
    max_restarts: int | None = None

    def restart_delay(self, crash_count: int) -> float:
        """Backoff before restart number ``crash_count`` (1-based)."""
        exponent = max(crash_count - 1, 0)
        return min(self.backoff * (2.0 ** exponent), self.backoff_cap)


#: Leave a crashed process down (the default for unsupervised processes).
NEVER = RestartPolicy()

#: Restart on crash with the default exponential backoff.
ON_CRASH = RestartPolicy(mode="on-crash")


class Process:
    """One schedulable process: syscall context, epoll set, run loop.

    ``ctx`` may be a plain :class:`Syscalls` (standalone process, pid 0
    until registered), another :class:`Process` (exec-style takeover: the
    component adopts the spawned context, its PID, and its table slot), or
    None for daemons that never touch the file system (cron).

    Attribute access this class does not define falls through to the
    syscall context, so a ``Process`` can be used anywhere a ``Syscalls``
    was expected — which is exactly the paper's point: a process *is* its
    file-I/O interface.
    """

    #: Override or pass ``name=``: shown in /proc/<pid>/status and cmdline.
    proc_name = "proc"

    def __init__(self, ctx: "Syscalls | Process | None", sim: "Simulator | None" = None, *, name: str = "") -> None:
        donor = ctx if isinstance(ctx, Process) else None
        self.sc = donor.sc if donor is not None else ctx
        self.sim = sim if sim is not None else (donor.sim if donor is not None else None)
        self.pid = donor.pid if donor is not None else 0
        self._table: "ProcessTable | None" = donor._table if donor is not None else None
        if name:
            self.proc_name = name
        self.running = False
        self.state = ProcState.READY
        self.restart_policy = NEVER
        self.supervisor: "Supervisor | None" = None
        self.crashes = 0
        self.restarts = 0
        self.last_error: BaseException | None = None
        self._ino: Inotify | None = None
        self._ep: Epoll | None = None
        self._watch_ctx: dict[int, tuple] = {}
        self._tasks: list = []
        self._wake_pending = False
        if donor is not None and self._table is not None:
            self._table._exec(donor, self)

    def __getattr__(self, attr: str):
        sc = self.__dict__.get("sc")
        if sc is not None and not attr.startswith("_"):
            return getattr(sc, attr)
        raise AttributeError(f"{type(self).__name__!r} object has no attribute {attr!r}")

    # -- descriptors (created lazily so spawning a process costs no syscalls) --

    @property
    def ino(self) -> Inotify:
        """The process's inotify descriptor (opened on first use)."""
        if self._ino is None:
            self._open_loop()
        return self._ino

    @property
    def ep(self) -> Epoll:
        """The process's epoll set (opened on first use)."""
        if self._ep is None:
            self._open_loop()
        return self._ep

    def _open_loop(self) -> None:
        if self.sc is None:
            raise RuntimeError(f"process {self.proc_name!r} has no syscall context to watch files with")
        self._ep = self.sc.epoll_create()
        self._ep.wakeup = self._schedule_wake
        self._ino = self.sc.inotify_init()
        self.sc.epoll_ctl(self._ep, EPOLL_CTL_ADD, self._ino, self._ino)

    def _close_loop(self) -> None:
        if self._ep is not None:
            self._ep.close()
            self._ep = None
        if self._ino is not None:
            self._ino.close()
            self._ino = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "Process":
        """Begin running.  Subclasses extend via :meth:`on_start`."""
        if self.running:
            return self
        self.running = True
        self.state = ProcState.READY
        self.on_start()
        if self.running:
            self.state = ProcState.BLOCKED
        return self

    def stop(self) -> None:
        """Stop all periodic work, drop every watch, exit cleanly."""
        self.running = False
        for task in self._tasks:
            task.stop()
        self._tasks.clear()
        self._close_loop()
        self._watch_ctx.clear()
        self._wake_pending = False
        self.state = ProcState.EXITED
        self.on_stop()

    def on_start(self) -> None:
        """Subclass hook: set up watches and tasks."""

    def on_stop(self) -> None:
        """Subclass hook: final cleanup."""

    # -- scheduling helpers (the only sanctioned path to the simulator) --------

    def every(self, interval: float, fn: Callable[[], None], *, start_delay: float | None = None):
        """Run ``fn`` periodically until the process stops or crashes."""
        task = self.sim.every(interval, self._guarded(fn), start_delay=start_delay)
        self._tasks.append(task)
        return task

    def schedule(self, delay: float, fn: Callable[[], None]):
        """Run ``fn`` once after ``delay``, crash-contained."""
        return self.sim.schedule(delay, self._guarded(fn))

    def _guarded(self, fn: Callable[[], None]) -> Callable[[], None]:
        def run() -> None:
            if not self.running:
                return
            before = self._syscalls()
            try:
                fn()
            except Exception as exc:  # noqa: BLE001 — fault containment boundary
                self._crash(exc)
            finally:
                self._charge(before)

        return run

    # -- watches ---------------------------------------------------------------

    def watch(self, path: str, mask: EventMask, ctx: tuple) -> bool:
        """Watch ``path``; True on success (False when it vanished)."""
        try:
            wd = self.sc.inotify_add_watch(self.ino, path, mask)
        except FsError:
            return False
        self._watch_ctx[wd] = ctx
        return True

    def unwatch(self, ctx: tuple) -> bool:
        """Drop every watch registered under ``ctx``; True if any existed."""
        removed = False
        for wd, existing in list(self._watch_ctx.items()):
            if existing != ctx:
                continue
            del self._watch_ctx[wd]
            if self._ino is not None:
                try:
                    self._ino.rm_watch(wd)
                except FsError:
                    pass  # already torn down with the instance
            removed = True
        return removed

    # -- the run loop ----------------------------------------------------------

    def _schedule_wake(self) -> None:
        if self._wake_pending or not self.running:
            return
        self._wake_pending = True
        self.state = ProcState.READY
        self.sim.schedule(WAKEUP_LATENCY, self._dispatch)

    def _dispatch(self) -> None:
        self._wake_pending = False
        if not self.running or self._ep is None:
            return
        self._count("proc.dispatches")
        before = self._syscalls()
        try:
            for source in self.sc.epoll_wait(self._ep):
                self.on_readable(source)
        except Exception as exc:  # noqa: BLE001 — fault containment boundary
            self._crash(exc)
        finally:
            self._charge(before)
        if self.running:
            self.state = ProcState.BLOCKED

    def on_readable(self, source: object) -> None:
        """One ready descriptor.  Default: drain inotify into on_event."""
        if source is not self._ino:
            return
        for event in self.sc.inotify_read(self._ino):
            ctx = self._watch_ctx.get(event.wd)
            if ctx is None:
                continue
            try:
                self.on_event(ctx, event)
            except FsError:
                continue  # tree changed under us; later events resolve it

    def on_event(self, ctx: tuple, event: NotifyEvent) -> None:
        """Subclass hook: handle one inotify event."""

    # -- fault containment -----------------------------------------------------

    def _crash(self, exc: BaseException) -> None:
        self.running = False
        self.crashes += 1
        self.last_error = exc
        for task in self._tasks:
            task.stop()
        self._tasks.clear()
        self._close_loop()
        self._watch_ctx.clear()
        self._wake_pending = False
        self.state = ProcState.CRASHED
        self._count("proc.crashes")
        if self.supervisor is not None:
            self.supervisor._on_crash(self)

    # -- accounting ------------------------------------------------------------

    def _syscalls(self) -> int:
        return self.sc.meter.syscalls if self.sc is not None else 0

    def _charge(self, syscalls_before: int) -> None:
        if self._table is not None:
            self._table.charge_cpu(self, self._syscalls() - syscalls_before)

    def _count(self, name: str) -> None:
        if self._table is not None:
            self._table.counters.add(name)


class Supervisor:
    """Restarts crashed processes according to their policy."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.supervised: list[Process] = []

    def supervise(self, process: Process, policy: RestartPolicy | None = None) -> Process:
        """Adopt ``process``; on-crash restart unless ``policy`` says never."""
        process.supervisor = self
        process.restart_policy = policy if policy is not None else ON_CRASH
        if process not in self.supervised:
            self.supervised.append(process)
        return process

    def _on_crash(self, process: Process) -> None:
        policy = process.restart_policy
        if policy.mode != "on-crash":
            return
        if policy.max_restarts is not None and process.restarts >= policy.max_restarts:
            return
        self.sim.schedule(policy.restart_delay(process.crashes), lambda: self._restart(process))

    def _restart(self, process: Process) -> None:
        if process.state is not ProcState.CRASHED:
            return  # stopped or revived in the meantime
        process.restarts += 1
        process._count("proc.restarts")
        try:
            process.start()
        except Exception as exc:  # noqa: BLE001 — a failing on_start is one more crash
            process._crash(exc)


class _ProcFile(FileInode):
    """A read-only file whose bytes are rendered from live process state."""

    def __init__(self, fs: Filesystem, render: Callable[[], str], *, mode: int = 0o444) -> None:
        super().__init__(fs, mode=mode, uid=0, gid=0)
        self._render = render

    def _refresh(self) -> None:
        # Refill the backing buffer directly: /proc reads must not emit
        # IN_MODIFY storms or trip close-time validation hooks.
        self._data = bytearray(self._render().encode())

    @property
    def size(self) -> int:
        self._refresh()
        return len(self._data)

    def read(self, offset: int, size: int) -> bytes:
        self._refresh()
        return super().read(offset, size)


class ProcFs(Filesystem):
    """The ``/proc`` tree: one directory per PID with live status files."""

    fs_type = "procfs"

    def __init__(self, *, clock: Callable[[], float] | None = None) -> None:
        super().__init__(clock=clock)
        self._dirs: dict[int, DirInode] = {}

    def add_process(self, proc: Process, table: "ProcessTable") -> None:
        """Publish ``/proc/<pid>/{status,cmdline,cgroup}`` for ``proc``."""
        directory = self.make_dir()
        for fname, render in (
            ("status", lambda p=proc: _render_status(p)),
            ("cmdline", lambda p=proc: f"{p.proc_name}\n"),
            ("cgroup", lambda p=proc, t=table: _render_cgroup(p, t)),
        ):
            directory.attach(fname, _ProcFile(self, render))
        self.root.attach(str(proc.pid), directory)
        self._dirs[proc.pid] = directory

    def remove_process(self, pid: int) -> None:
        """Retire a PID's directory (process reaped or re-execed)."""
        directory = self._dirs.pop(pid, None)
        if directory is None:
            return
        for name, _node in list(directory.children()):
            directory.detach(name)
        self.root.detach(str(pid))


def _render_status(proc: Process) -> str:
    lines = [
        f"Name:\t{proc.proc_name}",
        f"Pid:\t{proc.pid}",
        f"Uid:\t{proc.sc.cred.uid if proc.sc is not None else 0}",
        f"State:\t{proc.state.value}",
        f"Crashes:\t{proc.crashes}",
        f"Restarts:\t{proc.restarts}",
        f"Watches:\t{len(proc._watch_ctx)}",
        f"Tasks:\t{len(proc._tasks)}",
    ]
    return "\n".join(lines) + "\n"


def _render_cgroup(proc: Process, table: "ProcessTable") -> str:
    group = table.cgroups.group_of(table._cg_key(proc))
    return f"0::{group.path if group is not None else '/'}\n"


class ProcessTable:
    """PID allocation, cgroup placement, CPU charging, /proc publication."""

    def __init__(self, root_sc: "Syscalls", sim: "Simulator") -> None:
        self.root_sc = root_sc
        self.sim = sim
        self.counters = root_sc.vfs.counters
        self.model = root_sc.meter.model
        self.cgroups = CgroupManager()
        self.supervisor = Supervisor(sim)
        self.procfs = ProcFs(clock=root_sc.vfs.clock)
        # Machine-wide perf counters as one flat root-level file, so any
        # process (or a human at the shell) can `cat /proc/counters` —
        # ShmRing overflow drops, uring chain autocloses, dcache hits —
        # without reaching into kernel objects.
        self.procfs.root.attach("counters", _ProcFile(self.procfs, self._render_counters))
        self._procs: dict[int, Process] = {}
        self._next_pid = 1

    def _render_counters(self) -> str:
        return "".join(f"{name} {self.counters.get(name)}\n" for name in self.counters.names())

    # -- lifecycle -------------------------------------------------------------

    def spawn(self, *, cred: Credentials = ROOT, meter: "SyscallMeter | None" = None, name: str = "") -> Process:
        """Fork-like: a registered process with its own syscall context."""
        proc = Process(self.root_sc.spawn(cred=cred, meter=meter), self.sim, name=name)
        self.register(proc)
        return proc

    def register(self, proc: Process) -> int:
        """Assign a PID, place the process in cgroups, publish /proc."""
        pid = self._next_pid
        self._next_pid += 1
        proc.pid = pid
        proc._table = self
        if proc.proc_name == Process.proc_name:
            proc.proc_name = f"proc{pid}"
        if proc.sc is not None:
            proc.sc.owner_pid = pid
            proc.sc.owner_name = proc.proc_name
        self._procs[pid] = proc
        self.cgroups.attach(self._cg_key(proc), "/")
        self.procfs.add_process(proc, self)
        self.counters.add("proc.spawned")
        return pid

    def _exec(self, donor: Process, successor: Process) -> None:
        """A component took over a spawned context: same PID, new image."""
        if self._procs.get(donor.pid) is donor:
            self._procs[donor.pid] = successor
            if successor.sc is not None:
                successor.sc.owner_pid = successor.pid
                successor.sc.owner_name = successor.proc_name
            self.procfs.remove_process(donor.pid)
            self.procfs.add_process(successor, self)

    def reap(self, proc: Process) -> None:
        """Forget an exited/crashed process and retire its /proc entry."""
        if self._procs.get(proc.pid) is proc:
            del self._procs[proc.pid]
            self.procfs.remove_process(proc.pid)

    # -- introspection ---------------------------------------------------------

    def get(self, pid: int) -> Process | None:
        """The process owning ``pid`` (None when unknown/reaped)."""
        return self._procs.get(pid)

    def pids(self) -> list[int]:
        """All live PIDs, ascending."""
        return sorted(self._procs)

    def processes(self) -> list[Process]:
        """All registered processes in PID order."""
        return [self._procs[pid] for pid in self.pids()]

    def ps(self) -> list[tuple[int, str, str]]:
        """(pid, name, state) rows, PID order — the shell's ``ps``."""
        return [(p.pid, p.proc_name, p.state.value) for p in self.processes()]

    # -- supervision and accounting -------------------------------------------

    def supervise(self, proc: Process, policy: RestartPolicy | None = None) -> Process:
        """Put ``proc`` under the table's supervisor."""
        return self.supervisor.supervise(proc, policy)

    def _cg_key(self, proc: Process) -> str:
        return f"pid:{proc.pid}"

    def assign_cgroup(self, proc: Process, path: str) -> None:
        """Move a process into the cgroup at ``path``."""
        self.cgroups.attach(self._cg_key(proc), path)

    def charge_cpu(self, proc: Process, syscall_delta: int) -> None:
        """Bill one scheduled run: dispatch overhead plus syscall time."""
        cpu = self.model.syscall_time(syscall_delta) + 2 * self.model.ctxsw_cost
        if syscall_delta and proc.sc is not None:
            # Per-uid accounting: the quota view item-4 will meter against,
            # and what makes the reference monitor's picture shell-readable.
            self.counters.add(f"uid.{proc.sc.cred.uid}.syscalls", syscall_delta)
        try:
            self.cgroups.charge(self._cg_key(proc), "cpu", cpu)
            if syscall_delta:
                self.cgroups.charge(self._cg_key(proc), "syscalls", syscall_delta)
        except ResourceLimitExceeded as exc:
            # Saturated groups stop accumulating; the breach is recorded,
            # not raised into the middle of the dispatch loop.
            proc.last_error = exc
            self.counters.add("proc.throttled")
