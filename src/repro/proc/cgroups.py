"""Hierarchical resource accounting (control groups).

"Control groups allow processes to be grouped in an arbitrary hierarchy
for the purpose of resource management" (paper section 5.3).  The
reproduction implements the accounting/limit core: groups form a tree,
usage charges propagate to ancestors, and any group along the path may
impose a limit that rejects the charge.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ResourceLimitExceeded(RuntimeError):
    """A charge would push some group over its limit."""

    def __init__(self, group: str, resource: str, limit: float) -> None:
        self.group = group
        self.resource = resource
        self.limit = limit
        super().__init__(f"cgroup {group!r} would exceed {resource} limit {limit}")


@dataclass
class Cgroup:
    """One node in the cgroup hierarchy."""

    name: str
    parent: "Cgroup | None" = None
    limits: dict[str, float] = field(default_factory=dict)
    usage: dict[str, float] = field(default_factory=dict)
    members: set[str] = field(default_factory=set)

    @property
    def path(self) -> str:
        """Slash-joined path from the root group."""
        if self.parent is None:
            return "/"
        prefix = self.parent.path.rstrip("/")
        return f"{prefix}/{self.name}"

    def ancestors(self) -> list["Cgroup"]:
        """Self plus every ancestor up to the root."""
        chain = [self]
        node = self
        while node.parent is not None:
            node = node.parent
            chain.append(node)
        return chain

    def used(self, resource: str) -> float:
        """Current usage of ``resource``."""
        return self.usage.get(resource, 0.0)


class CgroupManager:
    """Create groups, place processes, charge usage, enforce limits."""

    def __init__(self) -> None:
        self.root = Cgroup(name="")
        self._groups: dict[str, Cgroup] = {"/": self.root}
        self._process_group: dict[str, Cgroup] = {}

    def create(self, path: str, *, limits: dict[str, float] | None = None) -> Cgroup:
        """Create a group at ``path`` (parents must exist)."""
        path = "/" + path.strip("/")
        if path in self._groups:
            raise ValueError(f"cgroup {path!r} already exists")
        parent_path, _, name = path.rpartition("/")
        parent = self._groups.get(parent_path or "/")
        if parent is None:
            raise ValueError(f"parent cgroup {parent_path!r} does not exist")
        group = Cgroup(name=name, parent=parent, limits=dict(limits or {}))
        self._groups[path] = group
        return group

    def get(self, path: str) -> Cgroup:
        """Look a group up by path."""
        path = "/" + path.strip("/") if path != "/" else "/"
        try:
            return self._groups[path]
        except KeyError:
            raise ValueError(f"no cgroup {path!r}") from None

    def attach(self, process: str, path: str) -> None:
        """Move a process (by name) into a group."""
        group = self.get(path)
        previous = self._process_group.get(process)
        if previous is not None:
            previous.members.discard(process)
        group.members.add(process)
        self._process_group[process] = group

    def group_of(self, process: str) -> Cgroup | None:
        """The group a process belongs to (None if unplaced)."""
        return self._process_group.get(process)

    def charge(self, process: str, resource: str, amount: float) -> None:
        """Charge ``amount`` of ``resource`` to the process's group chain.

        The whole chain is checked first, so a rejected charge leaves no
        partial accounting behind.
        """
        if amount < 0:
            raise ValueError("charge amount must be >= 0")
        group = self._process_group.get(process)
        if group is None:
            return  # unplaced processes are unaccounted, as on Linux
        chain = group.ancestors()
        for node in chain:
            limit = node.limits.get(resource)
            if limit is not None and node.used(resource) + amount > limit:
                raise ResourceLimitExceeded(node.path, resource, limit)
        for node in chain:
            node.usage[resource] = node.used(resource) + amount

    def usage_report(self) -> dict[str, dict[str, float]]:
        """Usage of every group, keyed by path."""
        return {path: dict(group.usage) for path, group in sorted(self._groups.items())}
