"""Distributed control via layered file systems (paper section 6).

"You can layer any number of distributed file systems on top of the yanc
file system and arrive at a distributed SDN controller."

* :class:`FileServer` — exports a subtree (usually the master's /net).
* :class:`RemoteFs` — the mountable client with three consistency modes.
* :class:`RpcChannel` — the priced RPC transport.
* :class:`ControllerCluster` — master + N workers, workload distribution.
"""

from repro.distfs.client import RemoteDir, RemoteFile, RemoteFs, RemoteSymlink
from repro.distfs.cluster import ControllerCluster, WorkerMachine
from repro.distfs.device import DeviceRuntime
from repro.distfs.rpc import RpcChannel
from repro.distfs.server import FileServer

__all__ = [
    "RemoteDir",
    "RemoteFile",
    "RemoteFs",
    "RemoteSymlink",
    "RpcChannel",
    "FileServer",
    "ControllerCluster",
    "WorkerMachine",
    "DeviceRuntime",
]
