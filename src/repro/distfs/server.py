"""The file server: exports a subtree of one host's VFS.

The exported subtree is usually ``/net`` on the master controller, so any
number of machines can mount the yanc tree remotely — the paper's §6
proof of concept ("we mounted NFS on top of yanc and distributed
computational workload among multiple machines").
"""

from __future__ import annotations

from repro.proc.process import Process
from repro.vfs.cred import Credentials
from repro.vfs.errors import FsError, InvalidArgument
from repro.vfs.syscalls import Syscalls


class FileServer(Process):
    """Dispatches remote-FS operations against a local subtree.

    The server daemon is a :class:`~repro.proc.process.Process` (spawn it
    via ``host.process()`` and it appears in ``/proc``), though a passive
    one: it never blocks in epoll — RPC arrivals drive it directly.
    """

    def __init__(self, sc: "Syscalls | Process", export_root: str, *, service_time: float = 5e-5) -> None:
        super().__init__(sc, name="fileserverd")
        self.export_root = export_root.rstrip("/") or "/"
        self.ops_served = 0
        #: CPU seconds the server spends per operation; the shared-server
        #: bottleneck that makes distributed-controller scaling sub-linear.
        self.service_time = service_time
        self.busy_time = 0.0
        #: Per-caller syscall contexts (memoized): each remote identity
        #: gets its own ``Syscalls`` so VFS permission checks see the
        #: *caller's* uid, never the server daemon's.
        self._caller_scs: dict[Credentials, Syscalls] = {}
        self.start()

    def _resolve(self, rpath: str) -> str:
        if ".." in rpath.split("/"):
            raise InvalidArgument(rpath, "path escapes the export")
        rpath = rpath.strip("/")
        return f"{self.export_root}/{rpath}" if rpath else self.export_root

    def _sc_for(self, cred: Credentials | None) -> Syscalls:
        if cred is None or cred == self.sc.cred:
            return self.sc
        sc = self._caller_scs.get(cred)
        if sc is None:
            sc = self.sc.spawn(cred=cred)
            self._caller_scs[cred] = sc
        return sc

    def handle(self, op: str, args: tuple, cred: Credentials | None = None) -> object:
        """The RPC entry point (FsError propagates to the client).

        ``cred`` is the caller's identity from the channel; every
        operation executes under it, so ACLs and mode bits bind remote
        admins and remote tenants exactly as they would local ones.
        Anonymous calls (``cred=None``) run as the server's own user.
        """
        self.ops_served += 1
        self.busy_time += self.service_time
        method = getattr(self, f"op_{op}", None)
        if method is None:
            raise InvalidArgument(op, "unknown remote-fs operation")
        saved = self.sc
        self.sc = self._sc_for(cred)
        try:
            return method(*args)
        finally:
            self.sc = saved

    # -- operations ----------------------------------------------------------------

    def op_readdir(self, rpath: str) -> list[tuple]:
        """List (name, type, mode, uid, gid, size, symlink-target, consistency).

        The last element carries the ``user.consistency`` extended
        attribute (empty when unset): the paper's §5.1 plan — "we plan on
        utilizing [xattrs] to specify consistency requirements for various
        network resources" — so remote clients can honour per-file
        consistency without extra round trips.
        """
        path = self._resolve(rpath)
        entries = []
        for name, st in self.sc.scandir(path):
            child = f"{path}/{name}"
            target = self.sc.readlink(child) if st.is_symlink else ""
            try:
                consistency = self.sc.getxattr(child, "user.consistency").decode()
            except FsError:
                consistency = ""
            entries.append((name, st.ftype.value, st.mode, st.uid, st.gid, st.size, target, consistency))
        return entries

    def op_getxattr(self, rpath: str, name: str) -> bytes:
        """Read an extended attribute."""
        return self.sc.getxattr(self._resolve(rpath), name)

    def op_setxattr(self, rpath: str, name: str, value: bytes) -> int:
        """Set an extended attribute."""
        self.sc.setxattr(self._resolve(rpath), name, value)
        return 0

    def op_listxattr(self, rpath: str) -> list[str]:
        """List extended attribute names."""
        return self.sc.listxattr(self._resolve(rpath))

    def op_stat(self, rpath: str) -> tuple:
        """(type, mode, uid, gid, size)."""
        st = self.sc.lstat(self._resolve(rpath))
        return (st.ftype.value, st.mode, st.uid, st.gid, st.size)

    def op_read(self, rpath: str) -> bytes:
        """Whole-file read."""
        return self.sc.read_bytes(self._resolve(rpath))

    def op_write(self, rpath: str, data: bytes) -> int:
        """Whole-file replace (open-write-close server-side, so yancfs
        validation and commit semantics run exactly as for local apps)."""
        return self.sc.write_bytes(self._resolve(rpath), data)

    def op_append(self, rpath: str, data: bytes) -> int:
        """Append."""
        return self.sc.write_bytes(self._resolve(rpath), data, append=True)

    def op_truncate(self, rpath: str, size: int) -> int:
        """Truncate."""
        self.sc.truncate(self._resolve(rpath), size)
        return 0

    def op_mkdir(self, rpath: str) -> int:
        """mkdir (semantic population happens server-side)."""
        self.sc.mkdir(self._resolve(rpath))
        return 0

    def op_create(self, rpath: str) -> int:
        """Create an empty regular file."""
        self.sc.write_bytes(self._resolve(rpath), b"")
        return 0

    def op_symlink(self, rpath: str, target: str) -> int:
        """Create a symlink."""
        self.sc.symlink(target, self._resolve(rpath))
        return 0

    def op_readlink(self, rpath: str) -> str:
        """Read a symlink target."""
        return self.sc.readlink(self._resolve(rpath))

    def op_unlink(self, rpath: str) -> int:
        """Remove a non-directory."""
        self.sc.unlink(self._resolve(rpath))
        return 0

    def op_rmdir(self, rpath: str) -> int:
        """Remove a directory (recursive where the object allows it)."""
        self.sc.rmdir(self._resolve(rpath))
        return 0

    def op_rename(self, old: str, new: str) -> int:
        """Rename within the export."""
        self.sc.rename(self._resolve(old), self._resolve(new))
        return 0
