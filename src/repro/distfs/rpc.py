"""The remote-FS RPC channel.

Client-side file operations execute the server handler directly (both
"machines" live in one simulation), but every call is *priced*: the
channel accumulates round-trip latency and transfer time, and counts
messages, so benchmarks can report the throughput a real deployment with
that latency would see.  This keeps client code synchronous — exactly how
an NFS client appears to its applications — while the cost model stays
explicit.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.perf.counters import PerfCounters
from repro.vfs.cred import Credentials
from repro.vfs.errors import NotPermitted, PermissionDenied, TimedOut

#: Observers called as ``tap("send", channel)`` before the handler runs
#: and ``tap("recv", channel)`` after it returns (or raises).  Used by
#: yancrace to model the message-passing happens-before edges of a call.
_call_taps: list[Callable[[str, "RpcChannel"], None]] = []


def add_call_tap(tap: Callable[[str, "RpcChannel"], None]) -> None:
    """Register an RPC observer (idempotent)."""
    if tap not in _call_taps:
        _call_taps.append(tap)


def remove_call_tap(tap: Callable[[str, "RpcChannel"], None]) -> None:
    """Unregister an RPC observer previously added."""
    if tap in _call_taps:
        _call_taps.remove(tap)


class RpcChannel:
    """One client's connection to a file server."""

    def __init__(
        self,
        handler: Callable[..., Any],
        *,
        latency: float = 2e-4,
        bandwidth: float = 1.25e9,  # bytes/second (10 Gb/s)
        counters: PerfCounters | None = None,
        name: str = "",
        cred: Credentials | None = None,
    ) -> None:
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.handler = handler
        self.latency = latency
        self.bandwidth = bandwidth
        self.counters = counters or PerfCounters()
        self.name = name
        #: The client's identity, sent with every call (AUTH_SYS style):
        #: the server executes each operation under these credentials, not
        #: its own.  ``None`` keeps legacy anonymous channels working —
        #: the server then falls back to its own (least-privilege) creds.
        self.cred = cred
        self.time_spent = 0.0
        self.calls = 0
        self.bytes_moved = 0
        self.connected = True

    def call(self, op: str, *args: object) -> Any:
        """One synchronous RPC: run the handler, charge the round trip."""
        if not self.connected:
            raise TimedOut(detail=f"rpc channel {self.name} is down")
        payload = sum(len(a) for a in args if isinstance(a, (bytes, str)))
        try:
            if _call_taps:
                for tap in _call_taps:
                    tap("send", self)
                try:
                    result = self.handler(op, args, self.cred)
                finally:
                    for tap in _call_taps:
                        tap("recv", self)
            else:
                result = self.handler(op, args, self.cred)
        except (PermissionDenied, NotPermitted):
            self.counters.add("distfs.rpc_denied")
            raise
        returned = len(result) if isinstance(result, (bytes, str)) else 64
        moved = payload + returned
        self.calls += 1
        self.bytes_moved += moved
        self.time_spent += 2 * self.latency + moved / self.bandwidth
        self.counters.add("distfs.rpc")
        self.counters.add(f"distfs.rpc.{op}")
        self.counters.add("distfs.rpc_bytes", moved)
        return result

    def close(self) -> None:
        """Drop the connection; further calls raise ETIMEDOUT."""
        self.connected = False
