"""The remote-FS client: a mountable Filesystem backed by RPC.

Mount a :class:`RemoteFs` anywhere in a host's tree and every application
on that host transparently operates on the server's subtree — mounted
over ``/net``, a whole controller machine works against another machine's
yanc tree, which is the paper's distributed-controller construction (§6).

Consistency modes (the "varying trade-offs" of §6):

* ``strict`` — every operation refetches from the server;
* ``cached`` — close-to-open-ish: directory listings, attributes, and
  file contents are cached for ``cache_ttl`` seconds (NFS-flavoured;
  remote writers may be invisible until the TTL lapses);
* ``eventual`` — like ``cached``, plus write-behind: writes complete
  locally and reach the server on :meth:`RemoteFs.flush` (WheelFS-ish
  relaxed durability for latency-sensitive writers).

Fidelity notes: inotify events fire only for *local* mutations (real NFS
gives no remote change notification either), and client-side ``rmdir``
defers per-directory emptiness policy to the server entry by entry.
"""

from __future__ import annotations

from typing import Callable

from repro.distfs.rpc import RpcChannel
from repro.vfs.cred import Credentials
from repro.vfs.errors import InvalidArgument
from repro.vfs.inode import DirInode, FileInode, Filesystem, Inode, SymlinkInode
from repro.vfs.notify import EventMask
from repro.vfs.stat import FileType

_CONSISTENCY_MODES = ("strict", "cached", "eventual")


class RemoteFs(Filesystem):
    """A file system whose truth lives on a :class:`FileServer`."""

    fs_type = "remotefs"
    # Directory contents are refreshed over RPC inside lookup() and mutated
    # outside attach()/detach(); the VFS dentry cache must not memoize them.
    cacheable = False

    def __init__(
        self,
        channel: RpcChannel,
        *,
        consistency: str = "strict",
        cache_ttl: float = 0.5,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if consistency not in _CONSISTENCY_MODES:
            raise InvalidArgument(detail=f"unknown consistency mode {consistency!r}")
        self.channel = channel
        self.consistency = consistency
        self.cache_ttl = cache_ttl
        self._dirty: dict[str, "RemoteFile"] = {}
        super().__init__(clock=clock)

    def make_root(self) -> "RemoteDir":
        return RemoteDir(self, "", mode=0o755, uid=0, gid=0)

    def make_symlink(self, target: str, *, uid: int = 0, gid: int = 0) -> "RemoteSymlink":
        node = RemoteSymlink(self, "", target, uid=uid, gid=gid)
        node._remote_exists = False
        return node

    # -- caching policy ---------------------------------------------------------------

    def cache_fresh(self, fetched_at: float) -> bool:
        """Is data fetched at ``fetched_at`` still servable?"""
        if self.consistency == "strict":
            return False
        return self.now() - fetched_at < self.cache_ttl

    @property
    def write_behind(self) -> bool:
        """True in eventual mode: writes buffer locally until flush."""
        return self.consistency == "eventual"

    def flush(self) -> int:
        """Push buffered writes to the server; returns files flushed."""
        flushed = 0
        for rpath, node in list(self._dirty.items()):
            self.channel.call("write", rpath, node.content_bytes())
            node.dirty = False
            node._remote_exists = True
            flushed += 1
            del self._dirty[rpath]
        return flushed

    def invalidate(self) -> None:
        """Drop every cache (force refetch on next access)."""
        self._invalidate_node(self.root)

    def _invalidate_node(self, node: Inode) -> None:
        if isinstance(node, RemoteDir):
            node._fetched_at = float("-inf")
            for _name, child in node.children():
                self._invalidate_node(child)
        elif isinstance(node, RemoteFile):
            node._cached_at = float("-inf")


class _RemoteNode:
    """Mixin: a node mirroring one remote path.

    Extended attributes pass through to the server (so §5.1 consistency
    tags set anywhere are authoritative on the master).
    """

    fs: RemoteFs
    rpath: str
    _remote_exists: bool
    _move_src: str | None

    def set_xattr(self, name: str, value: bytes) -> None:
        self.fs.channel.call("setxattr", self.rpath, name, bytes(value))
        if name == "user.consistency" and isinstance(self, RemoteFile):
            self.consistency_override = value.decode()

    def get_xattr(self, name: str) -> bytes:
        return self.fs.channel.call("getxattr", self.rpath, name)

    def list_xattrs(self) -> list[str]:
        return list(self.fs.channel.call("listxattr", self.rpath))


class RemoteDir(_RemoteNode, DirInode):
    """A directory proxy with TTL-cached listings."""

    def __init__(self, fs: RemoteFs, rpath: str, *, mode: int, uid: int, gid: int) -> None:
        super().__init__(fs, mode=mode, uid=uid, gid=gid)
        self.fs: RemoteFs = fs
        self.rpath = rpath
        self._remote_exists = True
        self._move_src: str | None = None
        self._fetched_at = float("-inf")

    def _child_rpath(self, name: str) -> str:
        return f"{self.rpath}/{name}" if self.rpath else name

    def _refresh(self) -> None:
        if self.fs.cache_fresh(self._fetched_at):
            return
        entries = self.fs.channel.call("readdir", self.rpath)
        self._fetched_at = self.fs.now()
        remote_names = set()
        for name, ftype_value, mode, uid, gid, size, target, consistency in entries:
            remote_names.add(name)
            ftype = FileType(ftype_value)
            existing = self._children.get(name)
            if existing is not None and existing.ftype is ftype:
                existing.mode, existing.uid, existing.gid = mode, uid, gid
                if isinstance(existing, RemoteFile):
                    existing._remote_size = size
                    existing.consistency_override = consistency
                continue
            node = self._make_proxy(name, ftype, mode, uid, gid, size, target)
            if isinstance(node, RemoteFile):
                node.consistency_override = consistency
            if existing is not None:
                super().detach(name, emit_mask=None)
            self._children[name] = node
            node.dentries.add((self, name))
        for name in list(self._children):
            child = self._children[name]
            if name not in remote_names and getattr(child, "_remote_exists", True):
                if not (isinstance(child, RemoteFile) and child.dirty):
                    super().detach(name, emit_mask=None)

    def _make_proxy(self, name: str, ftype: FileType, mode: int, uid: int, gid: int, size: int, target: str) -> Inode:
        rpath = self._child_rpath(name)
        if ftype is FileType.DIRECTORY:
            return RemoteDir(self.fs, rpath, mode=mode, uid=uid, gid=gid)
        if ftype is FileType.SYMLINK:
            node = RemoteSymlink(self.fs, rpath, target or ".", uid=uid, gid=gid)
            return node
        proxy = RemoteFile(self.fs, rpath, mode=mode, uid=uid, gid=gid)
        proxy._remote_size = size
        return proxy

    # -- reads go through the cache ---------------------------------------------------

    def lookup(self, name: str) -> Inode:
        self._refresh()
        return super().lookup(name)

    def has_child(self, name: str) -> bool:
        self._refresh()
        return super().has_child(name)

    def names(self) -> list[str]:
        self._refresh()
        return super().names()

    def children(self):
        self._refresh()
        return super().children()

    def is_empty(self) -> bool:
        self._refresh()
        return super().is_empty()

    def recursive_rmdir_ok(self) -> bool:
        # Per-entry emptiness policy is the server's call (see module docs).
        return True

    # -- writes go through RPC -----------------------------------------------------------

    def child_factory(self, name: str, ftype: FileType, cred: Credentials) -> Inode:
        rpath = self._child_rpath(name)
        if ftype is FileType.DIRECTORY:
            node = RemoteDir(self.fs, rpath, mode=0o755, uid=cred.uid, gid=cred.gid)
        elif ftype is FileType.REGULAR:
            node = RemoteFile(self.fs, rpath, mode=0o644, uid=cred.uid, gid=cred.gid)
        else:
            raise InvalidArgument(name, "use make_symlink for symlinks")
        node._remote_exists = False
        return node

    def attach(self, name: str, node: Inode, *, emit_mask: int | None = int(EventMask.IN_CREATE), cookie: int = 0) -> None:
        rpath = self._child_rpath(name)
        move_src = getattr(node, "_move_src", None)
        if move_src is not None:
            self.fs.channel.call("rename", move_src, rpath)
            node._move_src = None  # type: ignore[attr-defined]
        elif not getattr(node, "_remote_exists", True):
            if isinstance(node, RemoteDir):
                self.fs.channel.call("mkdir", rpath)
                node._remote_exists = True
            elif isinstance(node, RemoteSymlink):
                self.fs.channel.call("symlink", rpath, node.target)
                node._remote_exists = True
            # RemoteFile creation is deferred to the first content push:
            # the server sees one write RPC carrying the whole content, so
            # server-side close validation judges the real content, never
            # a transient empty file.
        if hasattr(node, "rpath"):
            _rebase_rpaths(node, rpath)
        super().attach(name, node, emit_mask=emit_mask, cookie=cookie)
        self._fetched_at = float("-inf")

    def detach(self, name: str, *, emit_mask: int | None = int(EventMask.IN_DELETE), cookie: int = 0) -> Inode:
        if name not in self._children:
            self._refresh()
        node = super().lookup(name)
        rpath = self._child_rpath(name)
        if emit_mask is not None and EventMask(emit_mask) & EventMask.IN_MOVED_FROM:
            node._move_src = rpath  # type: ignore[attr-defined]
        elif emit_mask is not None:
            if isinstance(node, DirInode):
                self.fs.channel.call("rmdir", rpath)
            elif getattr(node, "_remote_exists", True):
                self.fs.channel.call("unlink", rpath)
            self.fs._dirty.pop(rpath, None)
        result = super().detach(name, emit_mask=emit_mask, cookie=cookie)
        self._fetched_at = float("-inf")
        return result


def _rebase_rpaths(node: Inode, rpath: str) -> None:
    """Point a proxy (and, for directories, its cached subtree) at a new
    remote path — the client-side half of a rename."""
    node.rpath = rpath  # type: ignore[attr-defined]
    if isinstance(node, RemoteDir):
        # walk the *cached* children only (no refresh RPCs mid-rename)
        for name, child in list(node._children.items()):
            if hasattr(child, "rpath"):
                _rebase_rpaths(child, f"{rpath}/{name}")


class RemoteFile(_RemoteNode, FileInode):
    """A file proxy: TTL-cached content, write-through or write-behind."""

    def __init__(self, fs: RemoteFs, rpath: str, *, mode: int, uid: int, gid: int) -> None:
        super().__init__(fs, mode=mode, uid=uid, gid=gid)
        self.fs: RemoteFs = fs
        self.rpath = rpath
        self._remote_exists = True
        self._move_src: str | None = None
        self._cached_at = float("-inf")
        self._remote_size = 0
        self.dirty = False
        #: The file's ``user.consistency`` xattr (§5.1): "strict" forces
        #: refetch-on-read for this file even under a cached mount.
        self.consistency_override = ""

    @property
    def size(self) -> int:
        if self.dirty or self._cache_ok():
            return len(self._data)
        return self._remote_size

    def content_bytes(self) -> bytes:
        """The local (possibly dirty) content."""
        return bytes(self._data)

    def _cache_ok(self) -> bool:
        if self.consistency_override == "strict":
            return False
        return self.fs.cache_fresh(self._cached_at)

    def _ensure_content(self) -> None:
        if self.dirty or self._cache_ok():
            return
        if self._remote_exists:
            data = self.fs.channel.call("read", self.rpath)
            self._data = bytearray(data)
            self._remote_size = len(data)
        self._cached_at = self.fs.now()

    def read(self, offset: int, size: int) -> bytes:
        self._ensure_content()
        return super().read(offset, size)

    def write(self, offset: int, data: bytes) -> int:
        self._ensure_content()
        written = super().write(offset, data)
        self._push()
        return written

    def truncate(self, size: int) -> None:
        self._ensure_content()
        super().truncate(size)
        self._push()

    def _push(self) -> None:
        self._cached_at = self.fs.now()
        self._remote_size = len(self._data)
        if self.fs.write_behind:
            self.dirty = True
            self.fs._dirty[self.rpath] = self
            return
        self.fs.channel.call("write", self.rpath, bytes(self._data))
        self._remote_exists = True


class RemoteSymlink(_RemoteNode, SymlinkInode):
    """A symlink proxy."""

    def __init__(self, fs: RemoteFs, rpath: str, target: str, *, uid: int, gid: int) -> None:
        super().__init__(fs, target, uid=uid, gid=gid)
        self.fs: RemoteFs = fs
        self.rpath = rpath
        self._remote_exists = True
        self._move_src: str | None = None
