"""The distributed controller: worker machines over a remote-mounted /net.

Reproduces the paper's section 6 proof of concept: the master runs yancfs
and the drivers; each worker machine mounts the master's ``/net`` over the
remote FS and runs ordinary applications against it.  "Distributing the
computational workload among multiple machines" is then just assigning
work items to workers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distfs.client import RemoteFs
from repro.distfs.rpc import RpcChannel
from repro.distfs.server import FileServer
from repro.runtime import ControllerHost
from repro.sim import Simulator
from repro.vfs.cred import Credentials
from repro.vfs.syscalls import Syscalls
from repro.vfs.vfs import VirtualFileSystem
from repro.yancfs.client import YancClient


@dataclass
class WorkerMachine:
    """One worker: its own VFS with the master's /net mounted remotely."""

    name: str
    vfs: VirtualFileSystem
    sc: Syscalls
    fs: RemoteFs
    channel: RpcChannel
    compute_time: float = 0.0
    items_done: int = 0

    @property
    def client(self) -> YancClient:
        """A yanc client over the remote mount."""
        return YancClient(self.sc, "/net")

    @property
    def busy_time(self) -> float:
        """Total time this worker spent: local compute plus RPC waiting."""
        return self.compute_time + self.channel.time_spent

    def charge_compute(self, seconds: float) -> None:
        """Account local CPU time for a work item."""
        self.compute_time += seconds


class ControllerCluster:
    """A master controller host plus N remote worker machines."""

    def __init__(
        self,
        master: ControllerHost,
        *,
        sim: Simulator | None = None,
        rpc_latency: float = 2e-4,
        consistency: str = "cached",
        cache_ttl: float = 0.5,
    ) -> None:
        self.master = master
        self.sim = sim or master.sim
        self.rpc_latency = rpc_latency
        self.consistency = consistency
        self.cache_ttl = cache_ttl
        self.server = FileServer(master.process(name="fileserverd", role="driver"), master.mount_point)
        self.workers: list[WorkerMachine] = []

    def add_worker(self, name: str = "", *, cred: Credentials | None = None) -> WorkerMachine:
        """Boot a worker machine and mount the master's /net on it.

        ``cred`` is the identity the worker authenticates to the master
        with (default: root — an admin box).  The file server executes
        every RPC under it, so a tenant worker stays a tenant remotely.
        """
        name = name or f"worker{len(self.workers) + 1}"
        vfs = VirtualFileSystem(clock=lambda: self.sim.now)
        sc = Syscalls(vfs, cred=cred) if cred is not None else Syscalls(vfs)
        channel = RpcChannel(
            self.server.handle,
            latency=self.rpc_latency,
            counters=vfs.counters,
            name=name,
            cred=sc.cred,
        )
        fs = RemoteFs(
            channel,
            consistency=self.consistency,
            cache_ttl=self.cache_ttl,
            clock=lambda: self.sim.now,
        )
        sc.mkdir("/net")
        sc.mount("/net", fs, source=f"{self.master.name}:{self.master.mount_point}")
        worker = WorkerMachine(name=name, vfs=vfs, sc=sc, fs=fs, channel=channel)
        self.workers.append(worker)
        return worker

    def map_items(self, items: list, work_fn, *, compute_cost: float = 0.0) -> float:
        """Distribute ``items`` round-robin; returns the makespan.

        ``work_fn(worker, item)`` runs each item against the worker's
        remote-mounted tree.  The makespan is the busiest worker's total
        time (compute + RPC), i.e. the wall-clock a real cluster would
        need with perfect overlap across machines.
        """
        if not self.workers:
            raise RuntimeError("add_worker() first")
        start_busy = [worker.busy_time for worker in self.workers]
        server_busy_before = self.server.busy_time
        for index, item in enumerate(items):
            worker = self.workers[index % len(self.workers)]
            worker.charge_compute(compute_cost)
            work_fn(worker, item)
            worker.items_done += 1
        spans = [worker.busy_time - before for worker, before in zip(self.workers, start_busy)]
        # The master's file server is shared: its total service time is a
        # floor on the makespan no amount of workers can beat.
        server_span = self.server.busy_time - server_busy_before
        return max(max(spans, default=0.0), server_span)

    def flush_all(self) -> int:
        """Flush write-behind buffers on every worker."""
        return sum(worker.fs.flush() for worker in self.workers)
