"""Devices running yanc themselves (paper section 7.1).

"These devices can run yanc and participate in a distributed file system
rather than have a bespoke communication protocol ... when an application
on another machine writes to a file representing a flow entry, that will
then show up on the device (since it's a distributed file system), and the
device can read it and push it into the hardware tables."

A :class:`DeviceRuntime` is a switch with a brain: its own VFS, the
master's ``/net`` mounted over the remote FS, and a resident agent that

* polls its own switch directory and pushes committed flows straight into
  the local tables — **no OpenFlow channel exists at all**;
* honours ``config.port_down`` writes;
* publishes packet-ins into the (remote) per-app event buffers and its
  counters back into the tree.

Polling replaces inotify because change notification does not cross the
distributed FS (true of NFS; see the distfs module docs).
"""

from __future__ import annotations

from repro.dataplane.flowtable import FlowEntry, FlowRemovedReason
from repro.dataplane.switch import PacketInReason, PortSim, SwitchSim
from repro.distfs.client import RemoteFs
from repro.distfs.rpc import RpcChannel
from repro.distfs.server import FileServer
from repro.proc.process import Process
from repro.runtime import ControllerHost
from repro.vfs.cred import driver_credentials
from repro.vfs.syscalls import Syscalls
from repro.vfs.errors import FileExists, FsError
from repro.vfs.vfs import VirtualFileSystem
from repro.yancfs.client import YancClient

MAX_PENDING_EVENTS = 256


class DeviceRuntime(Process):
    """One self-controlled switch over a remote-mounted /net.

    The device's resident agent is a process *registered on the master's
    process table* — it shows up in the master's ``/proc`` and its
    scheduled polls are charged to its cgroup — but runs against its own
    local VFS with the master's tree remote-mounted at ``/net``.
    """

    def __init__(
        self,
        switch: SwitchSim,
        master: ControllerHost,
        *,
        server: FileServer | None = None,
        poll_interval: float = 0.1,
        rpc_latency: float = 2e-4,
        consistency: str = "strict",
    ) -> None:
        vfs = VirtualFileSystem(clock=lambda: master.sim.now)
        super().__init__(Syscalls(vfs), master.sim, name=f"dev-{switch.name}")
        self.switch = switch
        self.master = master
        self.poll_interval = poll_interval
        self.server = server if server is not None else FileServer(master.process(name="fileserverd", role="driver"), master.mount_point)
        self.vfs = vfs
        # The agent authenticates to the master as a driver: it owns and
        # populates its own switch subtree, nothing else.
        self.channel = RpcChannel(
            self.server.handle,
            latency=rpc_latency,
            counters=self.vfs.counters,
            name=f"dev-{switch.name}",
            cred=driver_credentials(f"dev-{switch.name}"),
        )
        self.fs = RemoteFs(self.channel, consistency=consistency, clock=lambda: self.sim.now)
        self.sc.mkdir("/net")
        self.sc.mount("/net", self.fs, source="master:/net")
        self.yc = YancClient(self.sc)
        self.fs_name = f"sw{switch.dpid}"
        self._flow_versions: dict[str, int] = {}
        self._installed: dict[str, FlowEntry] = {}
        self._event_seq = 0
        self._task = None
        self.flows_applied = 0
        self.events_published = 0
        switch.controller = self
        master.procs.register(self)

    # -- lifecycle ------------------------------------------------------------------

    def on_start(self) -> None:
        """Register in the tree and begin the poll loop."""
        path = self.yc.switch_path(self.fs_name)
        if not self.sc.exists(path):
            try:
                self.yc.create_switch(self.fs_name, dpid=self.switch.dpid)
            except FileExists:
                pass
        for port_no in sorted(self.switch.ports):
            if not self.sc.exists(self.yc.port_path(self.fs_name, port_no)):
                self.yc.create_port(self.fs_name, port_no)
        self._task = self.every(self.poll_interval, self.poll, start_delay=0.0)

    def stop(self) -> None:
        """Stop polling (the tree keeps the device's last-known state)."""
        self._task = None
        if self.switch.controller is self:
            self.switch.controller = None
        super().stop()

    # -- the poll loop -----------------------------------------------------------------

    def poll(self) -> None:
        """One reconciliation round: flows, port config, counters."""
        try:
            flow_names = set(self.yc.flows(self.fs_name))
        except FsError:
            return
        # removed flow directories -> remove hardware entries
        for name in list(self._installed):
            if name not in flow_names:
                entry = self._installed.pop(name)
                self.switch.table.remove_entry(entry)
                self._flow_versions.pop(name, None)
        # new/updated commits -> (re)install
        for name in flow_names:
            try:
                spec = self.yc.read_flow(self.fs_name, name)
            except FsError:
                continue
            if spec.version <= self._flow_versions.get(name, 0):
                continue
            previous = self._installed.get(name)
            if previous is not None:
                self.switch.table.remove_entry(previous)
            entry = FlowEntry(
                match=spec.match,
                actions=list(spec.actions),
                priority=spec.priority,
                idle_timeout=spec.idle_timeout,
                hard_timeout=spec.hard_timeout,
            )
            self.switch.install_flow(entry)
            self._installed[name] = entry
            self._flow_versions[name] = spec.version
            self.flows_applied += 1
        self._apply_port_config()
        self._publish_counters()

    def _apply_port_config(self) -> None:
        for port_no, port in self.switch.ports.items():
            try:
                down = self.yc.port_is_down(self.fs_name, port_no)
            except FsError:
                continue
            if down == port.admin_up:
                port.set_admin_up(not down)

    def _publish_counters(self) -> None:
        for name, entry in self._installed.items():
            base = f"{self.yc.flow_path(self.fs_name, name)}/counters"
            try:
                self.sc.write_text(f"{base}/packet_count", str(entry.packet_count))
                self.sc.write_text(f"{base}/byte_count", str(entry.byte_count))
            except FsError:
                continue

    # -- ControllerHooks (the switch talks to its own brain) ----------------------------

    def packet_in(
        self,
        switch: SwitchSim,
        in_port: int,
        reason: PacketInReason,
        buffer_id: int,
        data: bytes,
        total_len: int,
    ) -> None:
        """Publish a punt into every subscribed app buffer, remotely."""
        try:
            apps = self.sc.listdir(f"{self.yc.switch_path(self.fs_name)}/events")
        except FsError:
            return
        self._event_seq += 1
        wire_reason = "no_match" if reason is PacketInReason.NO_MATCH else "action"
        for app in apps:
            try:
                buffer_path = self.yc.events_path(self.fs_name, app)
                if len(self.sc.listdir(buffer_path)) >= MAX_PENDING_EVENTS:
                    continue
                self.yc.write_packet_in(
                    self.fs_name,
                    app,
                    self._event_seq,
                    in_port=in_port,
                    reason=wire_reason,
                    buffer_id=0xFFFFFFFF,  # device-local buffers don't cross the fs
                    total_len=total_len,
                    data=data,
                )
                self.events_published += 1
            except FsError:
                continue

    def flow_removed(self, switch: SwitchSim, entry: FlowEntry, reason: FlowRemovedReason) -> None:
        """A local timeout: retire the corresponding tree entry."""
        for name, installed in list(self._installed.items()):
            if installed is entry:
                self._installed.pop(name)
                self._flow_versions.pop(name, None)
                try:
                    self.yc.delete_flow(self.fs_name, name)
                except FsError:
                    pass
                return

    def port_status(self, switch: SwitchSim, port: PortSim, reason: str) -> None:
        """Reflect local port changes into the tree."""
        path = self.yc.port_path(self.fs_name, port.port_no)
        try:
            if reason == "delete":
                if self.sc.exists(path):
                    self.sc.rmdir(path)
                return
            if not self.sc.exists(path):
                self.yc.create_port(self.fs_name, port.port_no)
            self.sc.write_text(f"{path}/config.port_status", "up" if port.link_up else "down")
        except FsError:
            pass
