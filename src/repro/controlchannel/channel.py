"""Reliable in-order byte streams over the simulated clock."""

from __future__ import annotations

from typing import Callable

from repro.perf.counters import PerfCounters
from repro.sim import Simulator


class ControlConnection:
    """One endpoint of a control-channel byte stream.

    Delivery preserves ordering: each ``send`` schedules its payload
    ``latency`` seconds out, and the simulator's stable event ordering keeps
    back-to-back sends in sequence.  Set :attr:`on_data` to consume bytes as
    they arrive; otherwise they accumulate in :attr:`rx_buffer`.
    """

    def __init__(self, sim: Simulator, *, latency: float, counters: PerfCounters | None = None, name: str = "") -> None:
        self.sim = sim
        self.latency = latency
        self.counters = counters
        self.name = name
        self.peer: "ControlConnection | None" = None
        self.on_data: Callable[[bytes], None] | None = None
        self.rx_buffer = b""
        self.connected = True
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.tx_messages = 0

    def send(self, data: bytes) -> None:
        """Transmit bytes to the peer (silently dropped after close)."""
        if not self.connected or self.peer is None:
            return
        self.tx_bytes += len(data)
        self.tx_messages += 1
        if self.counters is not None:
            self.counters.add("openflow.tx")
            self.counters.add("openflow.tx_bytes", len(data))
        peer = self.peer
        self.sim.schedule(self.latency, lambda: peer._deliver(data))

    def _deliver(self, data: bytes) -> None:
        if not self.connected:
            return
        self.rx_bytes += len(data)
        if self.counters is not None:
            self.counters.add("openflow.rx")
        if self.on_data is not None:
            self.on_data(data)
        else:
            self.rx_buffer += data

    def drain(self) -> bytes:
        """Take everything buffered (for endpoints without a handler)."""
        data, self.rx_buffer = self.rx_buffer, b""
        return data

    def close(self) -> None:
        """Tear the connection down (both directions stop delivering)."""
        self.connected = False
        if self.peer is not None:
            self.peer.connected = False


def connect(
    sim: Simulator,
    *,
    latency: float = 5e-4,
    counters: PerfCounters | None = None,
    names: tuple[str, str] = ("a", "b"),
) -> tuple[ControlConnection, ControlConnection]:
    """Create a connected pair of control-channel endpoints."""
    a = ControlConnection(sim, latency=latency, counters=counters, name=names[0])
    b = ControlConnection(sim, latency=latency, counters=counters, name=names[1])
    a.peer = b
    b.peer = a
    return a, b
