"""The control channel between drivers and switch agents.

Replaces the TCP connections of a real deployment with reliable, in-order,
latency-modelled byte streams on the simulator clock.  Both ends exchange
raw bytes — the OpenFlow codecs above this layer do all framing — so the
wire format is genuinely exercised end to end.
"""

from repro.controlchannel.channel import ControlConnection, connect

__all__ = ["ControlConnection", "connect"]
