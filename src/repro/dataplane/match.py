"""Wildcard-capable flow matching (OpenFlow 1.0 semantics).

A :class:`Match` constrains any subset of the 12-tuple; absent fields are
wildcards — exactly the yanc convention where "absence of a match file
implies a wildcard" (paper section 3.4).  IP fields take CIDR prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from ipaddress import IPv4Network

from repro.netpkt.addr import MacAddress, cidr
from repro.netpkt.packet import FlowKey

#: The yanc file names for each match field (``match.<name>``).
MATCH_FIELD_NAMES = (
    "in_port",
    "dl_src",
    "dl_dst",
    "dl_type",
    "dl_vlan",
    "dl_vlan_pcp",
    "nw_src",
    "nw_dst",
    "nw_proto",
    "nw_tos",
    "tp_src",
    "tp_dst",
)

#: The CIDR-valued fields (their signature entries carry a prefix length).
_CIDR_FIELDS = frozenset({"nw_src", "nw_dst"})

#: A wildcard shape: ``((field, prefixlen-or-None), ...)`` sorted by field.
MaskSignature = tuple


def signature_key_of(signature: MaskSignature, key: "FlowKey", in_port: int) -> tuple | None:
    """The hash-bucket key a packet produces under one wildcard shape.

    Masks the packet's header fields down to exactly the bits a match with
    this signature constrains (tuple-space search: one hash probe per
    distinct wildcard shape).  Returns None when the packet lacks a field
    the shape requires — no entry of that shape can match it.
    """
    parts = []
    for name, plen in signature:
        if name == "in_port":
            parts.append(in_port)
            continue
        value = getattr(key, name)
        if value is None:
            return None
        if plen is not None:
            parts.append(int(value) >> (32 - plen) if plen else 0)
        else:
            parts.append(value)
    return tuple(parts)


@dataclass(frozen=True)
class Match:
    """A wildcarded match over the OpenFlow 1.0 tuple.

    ``None`` means wildcard.  ``nw_src``/``nw_dst`` are CIDR networks so a
    single entry covers a prefix.
    """

    in_port: int | None = None
    dl_src: MacAddress | None = None
    dl_dst: MacAddress | None = None
    dl_type: int | None = None
    dl_vlan: int | None = None
    dl_vlan_pcp: int | None = None
    nw_src: IPv4Network | None = None
    nw_dst: IPv4Network | None = None
    nw_proto: int | None = None
    nw_tos: int | None = None
    tp_src: int | None = None
    tp_dst: int | None = None

    def __post_init__(self) -> None:
        if self.dl_src is not None:
            object.__setattr__(self, "dl_src", MacAddress(self.dl_src))
        if self.dl_dst is not None:
            object.__setattr__(self, "dl_dst", MacAddress(self.dl_dst))
        if self.nw_src is not None:
            object.__setattr__(self, "nw_src", cidr(self.nw_src))
        if self.nw_dst is not None:
            object.__setattr__(self, "nw_dst", cidr(self.nw_dst))

    @classmethod
    def exact(cls, key: FlowKey, in_port: int | None = None) -> "Match":
        """An exact match on every field ``key`` carries."""
        values = key.field_values()
        for name in ("nw_src", "nw_dst"):
            if name in values:
                values[name] = IPv4Network(f"{values[name]}/32")
        return cls(in_port=in_port, **values)

    def matches(self, key: FlowKey, in_port: int) -> bool:
        """Does a packet with ``key`` arriving on ``in_port`` match?"""
        if self.in_port is not None and self.in_port != in_port:
            return False
        if self.dl_src is not None and self.dl_src != key.dl_src:
            return False
        if self.dl_dst is not None and self.dl_dst != key.dl_dst:
            return False
        if self.dl_type is not None and self.dl_type != key.dl_type:
            return False
        if self.dl_vlan is not None and self.dl_vlan != key.dl_vlan:
            return False
        if self.dl_vlan_pcp is not None and self.dl_vlan_pcp != key.dl_vlan_pcp:
            return False
        if self.nw_src is not None and (key.nw_src is None or key.nw_src not in self.nw_src):
            return False
        if self.nw_dst is not None and (key.nw_dst is None or key.nw_dst not in self.nw_dst):
            return False
        if self.nw_proto is not None and self.nw_proto != key.nw_proto:
            return False
        if self.nw_tos is not None and self.nw_tos != key.nw_tos:
            return False
        if self.tp_src is not None and self.tp_src != key.tp_src:
            return False
        if self.tp_dst is not None and self.tp_dst != key.tp_dst:
            return False
        return True

    def is_subset_of(self, other: "Match") -> bool:
        """True when every packet matching self also matches ``other``.

        Used for OpenFlow's non-strict delete/modify semantics.
        """
        for f in fields(self):
            mine = getattr(self, f.name)
            theirs = getattr(other, f.name)
            if theirs is None:
                continue
            if mine is None:
                return False
            if f.name in ("nw_src", "nw_dst"):
                if not mine.subnet_of(theirs):
                    return False
            elif mine != theirs:
                return False
        return True

    def mask_signature(self) -> MaskSignature:
        """The wildcard *shape* of this match, as a hashable signature.

        ``((field, prefixlen-or-None), ...)`` over the specified fields,
        sorted by field name; CIDR fields carry their prefix length so a
        ``/24`` and a ``/32`` match live in different tuple-space groups.
        Entries with the same signature share one hash-bucket family in
        :class:`~repro.dataplane.flowtable.FlowTable`.  Cached — Match is
        frozen, so the shape can never change.
        """
        cached = self.__dict__.get("_mask_signature")
        if cached is None:
            parts = []
            for f in fields(self):
                value = getattr(self, f.name)
                if value is None:
                    continue
                plen = value.prefixlen if f.name in _CIDR_FIELDS else None
                parts.append((f.name, plen))
            cached = tuple(parts)
            self.__dict__["_mask_signature"] = cached
        return cached

    def bucket_key(self) -> tuple:
        """This match's hash-bucket key within its signature's group.

        Aligned field-for-field with what :func:`signature_key_of` produces
        from a packet: a packet's key equals an entry's ``bucket_key()``
        exactly when the entry matches the packet (for that shape).
        """
        cached = self.__dict__.get("_bucket_key")
        if cached is None:
            parts = []
            for name, plen in self.mask_signature():
                value = getattr(self, name)
                if plen is not None:
                    parts.append(int(value.network_address) >> (32 - plen) if plen else 0)
                else:
                    parts.append(value)
            cached = tuple(parts)
            self.__dict__["_bucket_key"] = cached
        return cached

    def specified_fields(self) -> dict[str, object]:
        """The non-wildcard fields as a name -> value mapping."""
        return {f.name: getattr(self, f.name) for f in fields(self) if getattr(self, f.name) is not None}

    def to_files(self) -> dict[str, str]:
        """Render as yanc ``match.<field>`` file contents (paper §3.4)."""
        out = {}
        for name, value in self.specified_fields().items():
            out[f"match.{name}"] = str(value)
        return out

    @classmethod
    def from_files(cls, files: dict[str, str]) -> "Match":
        """Parse yanc ``match.<field>`` file contents back into a Match."""
        kwargs: dict[str, object] = {}
        for filename, text in files.items():
            if not filename.startswith("match."):
                continue
            name = filename[len("match.") :]
            if name not in MATCH_FIELD_NAMES:
                raise ValueError(f"unknown match field: {name}")
            text = text.strip()
            if name in ("dl_src", "dl_dst"):
                kwargs[name] = MacAddress(text)
            elif name in ("nw_src", "nw_dst"):
                kwargs[name] = cidr(text)
            elif name == "dl_type":
                kwargs[name] = int(text, 0)
            else:
                kwargs[name] = int(text, 0)
        return cls(**kwargs)  # type: ignore[arg-type]

    def __str__(self) -> str:
        parts = [f"{k}={v}" for k, v in self.specified_fields().items()]
        return "Match(" + ", ".join(parts) + ")" if parts else "Match(*)"
