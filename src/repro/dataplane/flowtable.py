"""The switch flow table: indexed priority lookup, counters, timeouts.

Lookup is tuple-space search (Srinivasan et al., adopted by Open vSwitch):
entries are grouped by the *shape* of their wildcard mask
(:meth:`~repro.dataplane.match.Match.mask_signature`), each group hashes
its entries on the masked field values, and a packet costs one hash probe
per distinct shape instead of one ``Match.matches`` call per entry.
Groups are visited in descending max-priority order with an early exit, so
a table dominated by one shape (the reactive router's exact-match entries)
resolves in O(1) regardless of how many thousand entries it holds.

Timeouts live in a lazy heap ("timeout wheel"): ``expire()`` pops only
entries whose armed deadline has passed — O(log n) per armed entry — and
re-arms entries whose idle deadline moved because traffic hit them, never
scanning the live table.

:class:`LinearFlowTable` keeps the seed implementation as an executable
reference model: parity tests and ``bench_fattree`` run both over
identical entry sets and assert identical winners.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from bisect import insort
from dataclasses import dataclass, field

from repro.dataplane.actions import Action
from repro.dataplane.match import Match, MaskSignature, signature_key_of
from repro.netpkt.packet import FlowKey

_entry_counter = itertools.count(1)


class FlowRemovedReason(enum.Enum):
    """Why an entry left the table (OpenFlow flow-removed reasons)."""

    IDLE_TIMEOUT = "idle"
    HARD_TIMEOUT = "hard"
    DELETE = "delete"


@dataclass
class FlowEntry:
    """One table entry: match, priority, actions, timeouts, counters."""

    match: Match
    actions: list[Action]
    priority: int = 0x8000
    cookie: int = 0
    idle_timeout: float = 0.0  # 0 = never
    hard_timeout: float = 0.0  # 0 = never
    installed_at: float = 0.0
    packet_count: int = 0
    byte_count: int = 0
    last_hit: float = 0.0
    entry_id: int = field(default_factory=lambda: next(_entry_counter))

    def hit(self, now: float, nbytes: int) -> None:
        """Record a matching packet."""
        self.packet_count += 1
        self.byte_count += nbytes
        self.last_hit = now

    def expired_reason(self, now: float) -> FlowRemovedReason | None:
        """Timeout status at ``now`` (None when still live).

        A hard timeout wins when both fire at the same instant — the entry
        was going away at that time no matter what traffic did.
        """
        if self.hard_timeout and now - self.installed_at >= self.hard_timeout:
            return FlowRemovedReason.HARD_TIMEOUT
        reference = self.last_hit or self.installed_at
        if self.idle_timeout and now - reference >= self.idle_timeout:
            return FlowRemovedReason.IDLE_TIMEOUT
        return None

    def next_deadline(self, now: float) -> float | None:
        """The earliest future instant this entry could expire at.

        None when the entry has no timeouts.  The idle deadline is
        computed from the *current* last-hit time, so a re-armed heap
        entry lands exactly where the refreshed idle clock says.
        """
        deadlines = []
        if self.hard_timeout:
            deadlines.append(self.installed_at + self.hard_timeout)
        if self.idle_timeout:
            deadlines.append((self.last_hit or self.installed_at) + self.idle_timeout)
        return min(deadlines) if deadlines else None

    def _order(self) -> tuple[int, int]:
        # Bucket sort key: highest priority first, then earliest install.
        return (-self.priority, self.entry_id)


class _MaskGroup:
    """All entries sharing one wildcard shape (one tuple-space)."""

    __slots__ = ("signature", "buckets", "max_priority")

    def __init__(self, signature: MaskSignature) -> None:
        self.signature = signature
        #: masked-field-values -> entries, highest priority first.
        self.buckets: dict[tuple, list[FlowEntry]] = {}
        self.max_priority = 0

    def recompute_max(self) -> None:
        """Refresh ``max_priority`` from the bucket heads (each bucket is
        sorted, so its first entry carries the bucket's max)."""
        self.max_priority = max((bucket[0].priority for bucket in self.buckets.values()), default=0)


class FlowTable:
    """A priority-ordered flow table with indexed (tuple-space) lookup.

    Lookup returns the highest-priority matching entry; ties break toward
    the earliest-installed entry, keeping behaviour deterministic and
    identical to :class:`LinearFlowTable`.
    """

    def __init__(self, table_id: int = 0) -> None:
        self.table_id = table_id
        self._groups: dict[MaskSignature, _MaskGroup] = {}
        self._group_order: list[_MaskGroup] = []  # descending max_priority
        self._order_dirty = False
        self._by_id: dict[int, FlowEntry] = {}
        self._sorted_cache: list[FlowEntry] | None = None
        self._wheel: list[tuple[float, int, int]] = []  # (deadline, seq, entry_id)
        self._wheel_seq = itertools.count()
        self.lookup_count = 0
        self.matched_count = 0
        #: Candidate entries examined across all lookups — the figure the
        #: watermark/early-exit claims are asserted against (a linear table
        #: examines len(table) per lookup; this one examines ~#shapes).
        self.entries_examined = 0

    def __len__(self) -> int:
        return len(self._by_id)

    # -- index maintenance -------------------------------------------------------------

    def _ordered_groups(self) -> list[_MaskGroup]:
        if self._order_dirty:
            self._group_order.sort(key=lambda g: -g.max_priority)
            self._order_dirty = False
        return self._group_order

    def _index_add(self, entry: FlowEntry) -> None:
        signature = entry.match.mask_signature()
        group = self._groups.get(signature)
        if group is None:
            group = _MaskGroup(signature)
            self._groups[signature] = group
            self._group_order.append(group)
        bucket = group.buckets.setdefault(entry.match.bucket_key(), [])
        insort(bucket, entry, key=FlowEntry._order)
        if entry.priority > group.max_priority:
            group.max_priority = entry.priority
            self._order_dirty = True
        self._by_id[entry.entry_id] = entry
        self._sorted_cache = None

    def _index_remove(self, entry: FlowEntry) -> None:
        signature = entry.match.mask_signature()
        group = self._groups[signature]
        key = entry.match.bucket_key()
        bucket = group.buckets[key]
        bucket.remove(entry)
        if not bucket:
            del group.buckets[key]
        if not group.buckets:
            del self._groups[signature]
            self._group_order.remove(group)
        elif entry.priority == group.max_priority:
            group.recompute_max()
            self._order_dirty = True
        del self._by_id[entry.entry_id]
        self._sorted_cache = None

    def _arm(self, entry: FlowEntry) -> None:
        deadline = entry.next_deadline(entry.installed_at)
        if deadline is not None:
            heapq.heappush(self._wheel, (deadline, next(self._wheel_seq), entry.entry_id))

    # -- the table API -----------------------------------------------------------------

    def entries(self) -> list[FlowEntry]:
        """All entries, highest priority first (cached between mutations)."""
        if self._sorted_cache is None:
            self._sorted_cache = sorted(self._by_id.values(), key=FlowEntry._order)
        return list(self._sorted_cache)

    def install(self, entry: FlowEntry, now: float = 0.0, *, replace: bool = True) -> FlowEntry:
        """Add an entry.

        With ``replace`` (OpenFlow ADD semantics) an existing entry with
        identical match and priority is overwritten, keeping its counters
        reset.  The overwrite check is one bucket probe — entries in the
        same bucket share the match, so only priorities are compared.
        """
        entry.installed_at = now
        if replace:
            group = self._groups.get(entry.match.mask_signature())
            if group is not None:
                bucket = group.buckets.get(entry.match.bucket_key(), ())
                for existing in [e for e in bucket if e.priority == entry.priority]:
                    self._index_remove(existing)
        self._index_add(entry)
        self._arm(entry)
        return entry

    def lookup(self, key: FlowKey, in_port: int) -> FlowEntry | None:
        """Find the winning entry for a packet (no counter updates).

        One hash probe per wildcard shape, in descending max-priority
        order.  The max-priority watermark ends the walk as soon as no
        remaining shape could beat the best candidate — shapes whose max
        *equals* the best are still probed because the priority tie breaks
        toward the earliest-installed entry.
        """
        self.lookup_count += 1
        best: FlowEntry | None = None
        for group in self._ordered_groups():
            if best is not None and group.max_priority < best.priority:
                break
            packet_key = signature_key_of(group.signature, key, in_port)
            if packet_key is None:
                continue
            bucket = group.buckets.get(packet_key)
            if not bucket:
                continue
            candidate = bucket[0]  # bucket is sorted: its head is its winner
            self.entries_examined += 1
            if best is None or (candidate.priority, -candidate.entry_id) > (best.priority, -best.entry_id):
                best = candidate
        if best is not None:
            self.matched_count += 1
        return best

    def _select(self, match: Match, strict: bool, priority: int) -> list[FlowEntry]:
        """Entries an OpenFlow MODIFY/DELETE with ``match`` addresses.

        Strict selection is one bucket probe (same shape, same values,
        same priority).  Non-strict selection visits only the shapes that
        could contain subsets of ``match`` — every field the selector
        specifies must be specified at least as tightly — and runs the
        full subset test on those groups' entries alone.
        """
        if strict:
            group = self._groups.get(match.mask_signature())
            if group is None:
                return []
            bucket = group.buckets.get(match.bucket_key(), ())
            return [e for e in bucket if e.priority == priority]
        selector = dict(match.mask_signature())
        out: list[FlowEntry] = []
        for group in self._groups.values():
            shape = dict(group.signature)
            if any(
                name not in shape or (plen is not None and (shape[name] is None or shape[name] < plen))
                for name, plen in selector.items()
            ):
                continue
            for bucket in group.buckets.values():
                out.extend(e for e in bucket if e.match.is_subset_of(match))
        out.sort(key=lambda e: e.entry_id)  # installation order, like the linear scan
        return out

    def modify(self, match: Match, actions: list[Action], *, strict: bool = False, priority: int = 0x8000) -> int:
        """OpenFlow MODIFY: rewrite actions on matching entries.

        Entries stay in place — counters, timeouts, and install times are
        preserved (OpenFlow 1.0 §4.6: counters are unmodified).
        """
        selected = self._select(match, strict, priority)
        for entry in selected:
            entry.actions = list(actions)
        return len(selected)

    def delete(self, match: Match, *, strict: bool = False, priority: int = 0x8000) -> list[FlowEntry]:
        """OpenFlow DELETE: remove matching entries; returns removals."""
        removed = self._select(match, strict, priority)
        for entry in removed:
            self._index_remove(entry)
        return removed

    def remove_entry(self, entry: FlowEntry) -> bool:
        """Remove a specific entry object; True when it was present."""
        if self._by_id.get(entry.entry_id) is not entry:
            return False
        self._index_remove(entry)
        return True

    def expire(self, now: float) -> list[tuple[FlowEntry, FlowRemovedReason]]:
        """Remove and return all timed-out entries.

        Pops the deadline heap instead of scanning the table: entries
        whose idle clock was pushed forward by traffic re-arm at their new
        deadline; entries already deleted are skipped lazily.
        """
        out = []
        while self._wheel and self._wheel[0][0] <= now:
            _deadline, _seq, entry_id = heapq.heappop(self._wheel)
            entry = self._by_id.get(entry_id)
            if entry is None:
                continue  # deleted/replaced since it was armed
            reason = entry.expired_reason(now)
            if reason is None:
                # Traffic moved the idle deadline; re-arm at the new one.
                deadline = entry.next_deadline(now)
                if deadline is not None:
                    heapq.heappush(self._wheel, (deadline, next(self._wheel_seq), entry_id))
                continue
            self._index_remove(entry)
            out.append((entry, reason))
        return out

    def aggregate_stats(self) -> dict[str, int]:
        """OpenFlow aggregate-stats triple plus lookup counters."""
        return {
            "flow_count": len(self._by_id),
            "packet_count": sum(e.packet_count for e in self._by_id.values()),
            "byte_count": sum(e.byte_count for e in self._by_id.values()),
            "lookup_count": self.lookup_count,
            "matched_count": self.matched_count,
        }


class LinearFlowTable:
    """The seed implementation: one ``Match.matches`` call per entry.

    Kept as the executable reference model for the indexed table — parity
    tests install identical entries into both and assert identical
    winners/removals, and ``benchmarks/bench_fattree.py`` uses it as the
    pre-refactor baseline the ≥10× claim is measured against.
    """

    def __init__(self, table_id: int = 0) -> None:
        self.table_id = table_id
        self._entries: list[FlowEntry] = []
        self.lookup_count = 0
        self.matched_count = 0
        self.entries_examined = 0

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[FlowEntry]:
        """All entries, highest priority first (re-sorted every call)."""
        return sorted(self._entries, key=lambda e: (-e.priority, e.entry_id))

    def install(self, entry: FlowEntry, now: float = 0.0, *, replace: bool = True) -> FlowEntry:
        """Add an entry (full-table scan for the replace probe)."""
        entry.installed_at = now
        if replace:
            for existing in list(self._entries):
                if existing.priority == entry.priority and existing.match == entry.match:
                    self._entries.remove(existing)
        self._entries.append(entry)
        return entry

    def lookup(self, key: FlowKey, in_port: int) -> FlowEntry | None:
        """Find the winning entry by scanning every installed entry."""
        self.lookup_count += 1
        best: FlowEntry | None = None
        for entry in self._entries:  # yancperf: disable=linear-table-scan (the reference model IS the linear scan)
            self.entries_examined += 1
            if not entry.match.matches(key, in_port):
                continue
            if best is None or (entry.priority, -entry.entry_id) > (best.priority, -best.entry_id):
                best = entry
        if best is not None:
            self.matched_count += 1
        return best

    def modify(self, match: Match, actions: list[Action], *, strict: bool = False, priority: int = 0x8000) -> int:
        """OpenFlow MODIFY: rewrite actions on matching entries."""
        changed = 0
        for entry in self._entries:
            if self._selected(entry, match, strict, priority):
                entry.actions = list(actions)
                changed += 1
        return changed

    def delete(self, match: Match, *, strict: bool = False, priority: int = 0x8000) -> list[FlowEntry]:
        """OpenFlow DELETE: remove matching entries; returns removals."""
        removed = [e for e in self._entries if self._selected(e, match, strict, priority)]
        for entry in removed:
            self._entries.remove(entry)
        return removed

    def remove_entry(self, entry: FlowEntry) -> bool:
        """Remove a specific entry object; True when it was present."""
        if entry in self._entries:
            self._entries.remove(entry)
            return True
        return False

    @staticmethod
    def _selected(entry: FlowEntry, match: Match, strict: bool, priority: int) -> bool:
        if strict:
            return entry.match == match and entry.priority == priority
        return entry.match.is_subset_of(match)

    def expire(self, now: float) -> list[tuple[FlowEntry, FlowRemovedReason]]:
        """Remove and return all timed-out entries (full scan)."""
        out = []
        for entry in list(self._entries):
            reason = entry.expired_reason(now)
            if reason is not None:
                self._entries.remove(entry)
                out.append((entry, reason))
        return out

    def aggregate_stats(self) -> dict[str, int]:
        """OpenFlow aggregate-stats triple plus lookup counters."""
        return {
            "flow_count": len(self._entries),
            "packet_count": sum(e.packet_count for e in self._entries),
            "byte_count": sum(e.byte_count for e in self._entries),
            "lookup_count": self.lookup_count,
            "matched_count": self.matched_count,
        }
