"""The switch flow table: priority lookup, counters, timeouts."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.dataplane.actions import Action
from repro.dataplane.match import Match
from repro.netpkt.packet import FlowKey

_entry_counter = itertools.count(1)


class FlowRemovedReason(enum.Enum):
    """Why an entry left the table (OpenFlow flow-removed reasons)."""

    IDLE_TIMEOUT = "idle"
    HARD_TIMEOUT = "hard"
    DELETE = "delete"


@dataclass
class FlowEntry:
    """One table entry: match, priority, actions, timeouts, counters."""

    match: Match
    actions: list[Action]
    priority: int = 0x8000
    cookie: int = 0
    idle_timeout: float = 0.0  # 0 = never
    hard_timeout: float = 0.0  # 0 = never
    installed_at: float = 0.0
    packet_count: int = 0
    byte_count: int = 0
    last_hit: float = 0.0
    entry_id: int = field(default_factory=lambda: next(_entry_counter))

    def hit(self, now: float, nbytes: int) -> None:
        """Record a matching packet."""
        self.packet_count += 1
        self.byte_count += nbytes
        self.last_hit = now

    def expired_reason(self, now: float) -> FlowRemovedReason | None:
        """Timeout status at ``now`` (None when still live)."""
        if self.hard_timeout and now - self.installed_at >= self.hard_timeout:
            return FlowRemovedReason.HARD_TIMEOUT
        reference = self.last_hit or self.installed_at
        if self.idle_timeout and now - reference >= self.idle_timeout:
            return FlowRemovedReason.IDLE_TIMEOUT
        return None


class FlowTable:
    """A priority-ordered flow table.

    Lookup returns the highest-priority matching entry; ties break toward
    the earliest-installed entry, keeping behaviour deterministic.
    """

    def __init__(self, table_id: int = 0) -> None:
        self.table_id = table_id
        self._entries: list[FlowEntry] = []
        self.lookup_count = 0
        self.matched_count = 0

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[FlowEntry]:
        """All entries, highest priority first."""
        return sorted(self._entries, key=lambda e: (-e.priority, e.entry_id))

    def install(self, entry: FlowEntry, now: float = 0.0, *, replace: bool = True) -> FlowEntry:
        """Add an entry.

        With ``replace`` (OpenFlow ADD semantics) an existing entry with
        identical match and priority is overwritten, keeping its counters
        reset.
        """
        entry.installed_at = now
        if replace:
            for existing in list(self._entries):
                if existing.priority == entry.priority and existing.match == entry.match:
                    self._entries.remove(existing)
        self._entries.append(entry)
        return entry

    def lookup(self, key: FlowKey, in_port: int) -> FlowEntry | None:
        """Find the winning entry for a packet (no counter updates)."""
        self.lookup_count += 1
        best: FlowEntry | None = None
        for entry in self._entries:
            if not entry.match.matches(key, in_port):
                continue
            if best is None or (entry.priority, -entry.entry_id) > (best.priority, -best.entry_id):
                best = entry
        if best is not None:
            self.matched_count += 1
        return best

    def modify(self, match: Match, actions: list[Action], *, strict: bool = False, priority: int = 0x8000) -> int:
        """OpenFlow MODIFY: rewrite actions on matching entries."""
        changed = 0
        for entry in self._entries:
            if self._selected(entry, match, strict, priority):
                entry.actions = list(actions)
                changed += 1
        return changed

    def delete(self, match: Match, *, strict: bool = False, priority: int = 0x8000) -> list[FlowEntry]:
        """OpenFlow DELETE: remove matching entries; returns removals."""
        removed = [e for e in self._entries if self._selected(e, match, strict, priority)]
        for entry in removed:
            self._entries.remove(entry)
        return removed

    def remove_entry(self, entry: FlowEntry) -> bool:
        """Remove a specific entry object; True when it was present."""
        if entry in self._entries:
            self._entries.remove(entry)
            return True
        return False

    @staticmethod
    def _selected(entry: FlowEntry, match: Match, strict: bool, priority: int) -> bool:
        if strict:
            return entry.match == match and entry.priority == priority
        return entry.match.is_subset_of(match)

    def expire(self, now: float) -> list[tuple[FlowEntry, FlowRemovedReason]]:
        """Remove and return all timed-out entries."""
        out = []
        for entry in list(self._entries):
            reason = entry.expired_reason(now)
            if reason is not None:
                self._entries.remove(entry)
                out.append((entry, reason))
        return out

    def aggregate_stats(self) -> dict[str, int]:
        """OpenFlow aggregate-stats triple plus lookup counters."""
        return {
            "flow_count": len(self._entries),
            "packet_count": sum(e.packet_count for e in self._entries),
            "byte_count": sum(e.byte_count for e in self._entries),
            "lookup_count": self.lookup_count,
            "matched_count": self.matched_count,
        }
