"""Flow actions: header rewrites and output.

An empty action list drops the packet (OpenFlow semantics).  The yanc file
form is one ``action.*`` file per action (paper figure 3: ``action.out``);
:func:`parse_action` converts the file representation back into an action.
"""

from __future__ import annotations

from dataclasses import dataclass
from ipaddress import IPv4Address

from repro.netpkt.addr import MacAddress, ip
from repro.netpkt.ethernet import Vlan
from repro.netpkt.packet import ParsedFrame
from repro.netpkt.transport import Tcp, Udp

# Reserved output "ports" (OpenFlow 1.0 values).
IN_PORT = 0xFFF8
FLOOD = 0xFFFB
ALL = 0xFFFC
TO_CONTROLLER = 0xFFFD
LOCAL = 0xFFFE

_RESERVED_NAMES = {
    "in_port": IN_PORT,
    "flood": FLOOD,
    "all": ALL,
    "controller": TO_CONTROLLER,
    "local": LOCAL,
}
_RESERVED_BY_VALUE = {v: k for k, v in _RESERVED_NAMES.items()}


class Action:
    """Base class; subclasses either rewrite headers or emit output."""

    def apply(self, frame: ParsedFrame) -> None:
        """Rewrite ``frame`` in place (output actions do nothing here)."""

    def to_file(self) -> tuple[str, str]:
        """Render as a yanc (``action.<name>``, content) pair."""
        raise NotImplementedError


@dataclass(frozen=True)
class Output(Action):
    """Send the packet out a port (or a reserved virtual port)."""

    port: int

    def to_file(self) -> tuple[str, str]:
        return "action.out", _RESERVED_BY_VALUE.get(self.port, str(self.port))


@dataclass(frozen=True)
class SetDlSrc(Action):
    """Rewrite the Ethernet source address."""

    mac: MacAddress

    def __post_init__(self) -> None:
        object.__setattr__(self, "mac", MacAddress(self.mac))

    def apply(self, frame: ParsedFrame) -> None:
        frame.eth.src = self.mac

    def to_file(self) -> tuple[str, str]:
        return "action.set_dl_src", str(self.mac)


@dataclass(frozen=True)
class SetDlDst(Action):
    """Rewrite the Ethernet destination address."""

    mac: MacAddress

    def __post_init__(self) -> None:
        object.__setattr__(self, "mac", MacAddress(self.mac))

    def apply(self, frame: ParsedFrame) -> None:
        frame.eth.dst = self.mac

    def to_file(self) -> tuple[str, str]:
        return "action.set_dl_dst", str(self.mac)


@dataclass(frozen=True)
class SetNwSrc(Action):
    """Rewrite the IPv4 source address (no-op on non-IP packets)."""

    addr: IPv4Address

    def __post_init__(self) -> None:
        object.__setattr__(self, "addr", ip(self.addr))

    def apply(self, frame: ParsedFrame) -> None:
        if frame.ipv4 is not None:
            frame.ipv4.src = self.addr

    def to_file(self) -> tuple[str, str]:
        return "action.set_nw_src", str(self.addr)


@dataclass(frozen=True)
class SetNwDst(Action):
    """Rewrite the IPv4 destination address (no-op on non-IP packets)."""

    addr: IPv4Address

    def __post_init__(self) -> None:
        object.__setattr__(self, "addr", ip(self.addr))

    def apply(self, frame: ParsedFrame) -> None:
        if frame.ipv4 is not None:
            frame.ipv4.dst = self.addr

    def to_file(self) -> tuple[str, str]:
        return "action.set_nw_dst", str(self.addr)


@dataclass(frozen=True)
class SetTpSrc(Action):
    """Rewrite the TCP/UDP source port."""

    port: int

    def apply(self, frame: ParsedFrame) -> None:
        if isinstance(frame.inner, (Tcp, Udp)):
            frame.inner.src_port = self.port

    def to_file(self) -> tuple[str, str]:
        return "action.set_tp_src", str(self.port)


@dataclass(frozen=True)
class SetTpDst(Action):
    """Rewrite the TCP/UDP destination port."""

    port: int

    def apply(self, frame: ParsedFrame) -> None:
        if isinstance(frame.inner, (Tcp, Udp)):
            frame.inner.dst_port = self.port

    def to_file(self) -> tuple[str, str]:
        return "action.set_tp_dst", str(self.port)


@dataclass(frozen=True)
class SetVlan(Action):
    """Set (or add) the 802.1Q VLAN id."""

    vid: int

    def apply(self, frame: ParsedFrame) -> None:
        if frame.eth.vlan is None:
            frame.eth.vlan = Vlan(vid=self.vid)
        else:
            frame.eth.vlan = Vlan(vid=self.vid, pcp=frame.eth.vlan.pcp, dei=frame.eth.vlan.dei)

    def to_file(self) -> tuple[str, str]:
        return "action.set_vlan", str(self.vid)


@dataclass(frozen=True)
class StripVlan(Action):
    """Remove the 802.1Q tag."""

    def apply(self, frame: ParsedFrame) -> None:
        frame.eth.vlan = None

    def to_file(self) -> tuple[str, str]:
        return "action.strip_vlan", ""


def parse_action(filename: str, content: str) -> Action:
    """Parse one yanc ``action.*`` file back into an :class:`Action`."""
    if not filename.startswith("action."):
        raise ValueError(f"not an action file: {filename}")
    kind = filename[len("action.") :]
    content = content.strip()
    if kind == "out":
        if content in _RESERVED_NAMES:
            return Output(_RESERVED_NAMES[content])
        return Output(int(content, 0))
    if kind == "set_dl_src":
        return SetDlSrc(MacAddress(content))
    if kind == "set_dl_dst":
        return SetDlDst(MacAddress(content))
    if kind == "set_nw_src":
        return SetNwSrc(ip(content))
    if kind == "set_nw_dst":
        return SetNwDst(ip(content))
    if kind == "set_tp_src":
        return SetTpSrc(int(content, 0))
    if kind == "set_tp_dst":
        return SetTpDst(int(content, 0))
    if kind == "set_vlan":
        return SetVlan(int(content, 0))
    if kind == "strip_vlan":
        return StripVlan()
    raise ValueError(f"unknown action kind: {kind}")
