"""End hosts: a tiny IP stack good enough to prove connectivity.

Hosts answer ARP, reply to pings, and can send UDP datagrams — the traffic
the example applications (reactive router, ARP responder, firewall, load
balancer) are demonstrated with.
"""

from __future__ import annotations

from dataclasses import dataclass
from ipaddress import IPv4Address

from repro.dataplane.link import Link
from repro.netpkt.addr import BROADCAST_MAC, MacAddress, ip
from repro.netpkt.arp import ARP_REQUEST, Arp
from repro.netpkt.ethernet import ETH_TYPE_ARP, ETH_TYPE_IPV4, Ethernet
from repro.netpkt.ipv4 import ICMP_ECHO_REPLY, ICMP_ECHO_REQUEST, IPPROTO_ICMP, IPPROTO_UDP, Icmp, IPv4
from repro.netpkt.packet import ParsedFrame, build_frame, parse_frame
from repro.netpkt.transport import Udp
from repro.sim import Simulator


@dataclass
class PingResult:
    """One completed echo exchange."""

    seq: int
    rtt: float


class HostSim:
    """A host with one NIC, an ARP cache, and ping/UDP helpers."""

    def __init__(self, name: str, mac: MacAddress, ip_addr: IPv4Address, sim: Simulator) -> None:
        self.name = name
        self.mac = MacAddress(mac)
        self.ip = ip(ip_addr)
        self.sim = sim
        self.link: Link | None = None
        self.arp_table: dict[IPv4Address, MacAddress] = {}
        self.received: list[ParsedFrame] = []
        self.udp_received: list[tuple[IPv4Address, Udp]] = []
        self.ping_results: list[PingResult] = []
        self._echo_sent: dict[tuple[int, int], float] = {}
        self._pending_arp: dict[IPv4Address, list[bytes]] = {}
        self._ping_ident = 0x1234
        self._ping_seq = 0
        self.rx_frames = 0
        self.tx_frames = 0

    @property
    def endpoint_name(self) -> str:
        return f"{self.name}:eth0"

    # -- transmit ------------------------------------------------------------------

    def send_raw(self, raw: bytes) -> None:
        """Put a frame on the wire."""
        if self.link is None:
            return
        self.tx_frames += 1
        self.link.transmit(self, raw)

    def _send_ip(self, dst_ip: IPv4Address, proto: int, payload: bytes) -> None:
        dst_mac = self.arp_table.get(dst_ip)
        packet = IPv4(src=self.ip, dst=dst_ip, proto=proto, payload=payload)
        if dst_mac is None:
            # Queue behind ARP resolution.
            raw = build_frame(
                Ethernet(dst=MacAddress(0), src=self.mac, eth_type=ETH_TYPE_IPV4),
                packet,
            )
            self._pending_arp.setdefault(dst_ip, []).append(raw)
            self._send_arp_request(dst_ip)
            return
        raw = build_frame(Ethernet(dst=dst_mac, src=self.mac, eth_type=ETH_TYPE_IPV4), packet)
        self.send_raw(raw)

    def _send_arp_request(self, target_ip: IPv4Address) -> None:
        request = Arp.request(self.mac, self.ip, target_ip)
        raw = build_frame(Ethernet(dst=BROADCAST_MAC, src=self.mac, eth_type=ETH_TYPE_ARP), request)
        self.send_raw(raw)

    def ping(self, dst_ip: IPv4Address | str, *, payload: bytes = b"yanc-ping") -> int:
        """Send one ICMP echo request; returns its sequence number.

        Results land in :attr:`ping_results` once the reply arrives (run
        the simulator to let that happen).
        """
        dst_ip = ip(dst_ip)
        self._ping_seq += 1
        seq = self._ping_seq
        echo = Icmp.echo_request(self._ping_ident, seq, payload)
        self._echo_sent[(self._ping_ident, seq)] = self.sim.now
        self._send_ip(dst_ip, IPPROTO_ICMP, echo.pack())
        return seq

    def send_udp(self, dst_ip: IPv4Address | str, src_port: int, dst_port: int, payload: bytes) -> None:
        """Send a UDP datagram."""
        datagram = Udp(src_port=src_port, dst_port=dst_port, payload=payload)
        self._send_ip(ip(dst_ip), IPPROTO_UDP, datagram.pack())

    # -- receive -------------------------------------------------------------------

    def handle_frame(self, raw: bytes) -> None:
        """Link delivery entry point."""
        self.rx_frames += 1
        try:
            frame = parse_frame(raw)
        except ValueError:
            return
        if not (frame.eth.dst == self.mac or frame.eth.dst.is_broadcast or frame.eth.dst.is_multicast):
            return
        self.received.append(frame)
        if isinstance(frame.inner, Arp):
            self._handle_arp(frame.inner)
        elif frame.ipv4 is not None and frame.ipv4.dst == self.ip:
            self._handle_ip(frame)

    def _handle_arp(self, arp: Arp) -> None:
        self.arp_table[arp.sender_ip] = arp.sender_mac
        if arp.opcode == ARP_REQUEST and arp.target_ip == self.ip:
            reply = arp.reply_from(self.mac)
            raw = build_frame(Ethernet(dst=arp.sender_mac, src=self.mac, eth_type=ETH_TYPE_ARP), reply)
            self.send_raw(raw)
        self._flush_pending(arp.sender_ip)

    def _flush_pending(self, resolved_ip: IPv4Address) -> None:
        mac = self.arp_table.get(resolved_ip)
        if mac is None:
            return
        for raw in self._pending_arp.pop(resolved_ip, []):
            frame = parse_frame(raw)
            frame.eth.dst = mac
            self.send_raw(frame.repack())

    def _handle_ip(self, frame: ParsedFrame) -> None:
        assert frame.ipv4 is not None
        if isinstance(frame.inner, Icmp):
            icmp = frame.inner
            if icmp.icmp_type == ICMP_ECHO_REQUEST:
                reply = icmp.echo_reply()
                self._send_ip(frame.ipv4.src, IPPROTO_ICMP, reply.pack())
            elif icmp.icmp_type == ICMP_ECHO_REPLY:
                sent_at = self._echo_sent.pop((icmp.ident, icmp.seq), None)
                if sent_at is not None:
                    self.ping_results.append(PingResult(seq=icmp.seq, rtt=self.sim.now - sent_at))
        elif isinstance(frame.inner, Udp):
            self.udp_received.append((frame.ipv4.src, frame.inner))

    # -- inspection ----------------------------------------------------------------

    def reachable(self, seq: int) -> bool:
        """Did ping ``seq`` complete?"""
        return any(result.seq == seq for result in self.ping_results)
