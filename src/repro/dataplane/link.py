"""Point-to-point links with latency, driven by the simulator clock."""

from __future__ import annotations

from typing import Protocol

from repro.sim import Simulator


class LinkEndpoint(Protocol):
    """Anything a link can join: a switch port or a host NIC."""

    def handle_frame(self, raw: bytes) -> None:
        """Deliver an arriving frame."""
        ...

    @property
    def endpoint_name(self) -> str:
        """Stable display name (``sw1:2`` or ``h1:eth0``)."""
        ...


class Link:
    """A bidirectional link between two endpoints."""

    def __init__(self, sim: Simulator, a: LinkEndpoint, b: LinkEndpoint, *, latency: float = 1e-4) -> None:
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.sim = sim
        self.a = a
        self.b = b
        self.latency = latency
        self.up = True
        self.tx_frames = 0
        self.dropped_frames = 0

    def peer_of(self, endpoint: LinkEndpoint) -> LinkEndpoint:
        """The endpoint at the other end."""
        if endpoint is self.a:
            return self.b
        if endpoint is self.b:
            return self.a
        raise ValueError("endpoint is not attached to this link")

    def transmit(self, sender: LinkEndpoint, raw: bytes) -> None:
        """Carry ``raw`` from ``sender`` to the peer after the latency."""
        if not self.up:
            self.dropped_frames += 1
            return
        peer = self.peer_of(sender)
        self.tx_frames += 1
        self.sim.schedule(self.latency, lambda: peer.handle_frame(raw))

    def set_up(self, up: bool) -> None:
        """Administratively raise or cut the link."""
        self.up = up

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return f"Link({self.a.endpoint_name} <-> {self.b.endpoint_name}, {state})"
