"""The dataplane: simulated switches, links, hosts, and topologies.

This package replaces the paper's Mininet/hardware substrate.  Switches
forward real frames through priority flow tables with OpenFlow 1.0 match
semantics (wildcards, CIDR prefixes), punt table misses to their control
agent, keep per-flow and per-port counters, and honour idle/hard timeouts —
everything the yanc file system exposes and the drivers program.
"""

from repro.dataplane.actions import (
    FLOOD,
    IN_PORT,
    LOCAL,
    TO_CONTROLLER,
    Action,
    Output,
    SetDlDst,
    SetDlSrc,
    SetNwDst,
    SetNwSrc,
    SetTpDst,
    SetTpSrc,
    SetVlan,
    StripVlan,
    parse_action,
)
from repro.dataplane.flowtable import FlowEntry, FlowRemovedReason, FlowTable, LinearFlowTable
from repro.dataplane.host import HostSim
from repro.dataplane.link import Link
from repro.dataplane.match import Match
from repro.dataplane.network import Network
from repro.dataplane.switch import PacketInReason, PortSim, SwitchSim
from repro.dataplane.topology import (
    build_campus,
    build_clos,
    build_fat_tree,
    build_linear,
    build_random,
    build_ring,
    build_star,
    build_tree,
)
from repro.dataplane.traffic import ReplayStats, TrafficFlow, TrafficMatrix, TrafficReplay

__all__ = [
    "FLOOD",
    "IN_PORT",
    "LOCAL",
    "TO_CONTROLLER",
    "Action",
    "Output",
    "SetDlDst",
    "SetDlSrc",
    "SetNwDst",
    "SetNwSrc",
    "SetTpDst",
    "SetTpSrc",
    "SetVlan",
    "StripVlan",
    "parse_action",
    "FlowEntry",
    "FlowRemovedReason",
    "FlowTable",
    "LinearFlowTable",
    "HostSim",
    "Link",
    "Match",
    "Network",
    "PacketInReason",
    "PortSim",
    "SwitchSim",
    "build_campus",
    "build_clos",
    "build_fat_tree",
    "build_linear",
    "build_random",
    "build_ring",
    "build_star",
    "build_tree",
    "ReplayStats",
    "TrafficFlow",
    "TrafficMatrix",
    "TrafficReplay",
]
