"""The switch simulator: ports, pipeline, buffers, controller hooks."""

from __future__ import annotations

import enum
from typing import Protocol

from repro.dataplane.actions import (
    ALL,
    FLOOD,
    IN_PORT,
    LOCAL,
    TO_CONTROLLER,
    Action,
    Output,
)
from repro.dataplane.flowtable import FlowEntry, FlowRemovedReason, FlowTable
from repro.dataplane.link import Link
from repro.netpkt.addr import MacAddress
from repro.netpkt.packet import ParsedFrame, parse_frame
from repro.sim import Simulator

#: OpenFlow's "packet is not buffered" sentinel.
NO_BUFFER = 0xFFFFFFFF


class PacketInReason(enum.Enum):
    """Why a packet was punted to the controller."""

    NO_MATCH = "no_match"
    ACTION = "action"


class ControllerHooks(Protocol):
    """What a switch expects from its control-plane agent."""

    def packet_in(
        self,
        switch: "SwitchSim",
        in_port: int,
        reason: PacketInReason,
        buffer_id: int,
        data: bytes,
        total_len: int,
    ) -> None:
        """A packet was punted."""
        ...

    def flow_removed(self, switch: "SwitchSim", entry: FlowEntry, reason: FlowRemovedReason) -> None:
        """A flow entry timed out or was deleted."""
        ...

    def port_status(self, switch: "SwitchSim", port: "PortSim", reason: str) -> None:
        """A port was added, deleted, or changed state."""
        ...


class PortSim:
    """One switch port: a link endpoint with counters and admin state."""

    def __init__(self, switch: "SwitchSim", port_no: int, name: str, mac: MacAddress) -> None:
        self.switch = switch
        self.port_no = port_no
        self.name = name
        self.mac = mac
        self.link: Link | None = None
        self.admin_up = True  # config: controller-settable (config.port_down)
        self.rx_packets = 0
        self.tx_packets = 0
        self.rx_bytes = 0
        self.tx_bytes = 0
        self.tx_dropped = 0

    @property
    def endpoint_name(self) -> str:
        return f"{self.switch.name}:{self.port_no}"

    @property
    def link_up(self) -> bool:
        """Carrier: an attached, administratively-up link."""
        return self.link is not None and self.link.up

    @property
    def is_up(self) -> bool:
        """Usable for forwarding: admin up and carrier present."""
        return self.admin_up and self.link_up

    def handle_frame(self, raw: bytes) -> None:
        """Link delivery entry point."""
        if not self.admin_up:
            return
        self.rx_packets += 1
        self.rx_bytes += len(raw)
        self.switch.ingress(self, raw)

    def transmit(self, raw: bytes) -> None:
        """Send a frame out this port."""
        if not self.is_up:
            self.tx_dropped += 1
            return
        self.tx_packets += 1
        self.tx_bytes += len(raw)
        assert self.link is not None
        self.link.transmit(self, raw)

    def set_admin_up(self, up: bool) -> None:
        """Controller port-mod: bring the port up or down."""
        if up == self.admin_up:
            return
        self.admin_up = up
        self.switch.notify_port_status(self, "modify")

    def counters(self) -> dict[str, int]:
        """Per-port counters as exposed in the yanc ``counters/`` dir."""
        return {
            "rx_packets": self.rx_packets,
            "tx_packets": self.tx_packets,
            "rx_bytes": self.rx_bytes,
            "tx_bytes": self.tx_bytes,
            "tx_dropped": self.tx_dropped,
        }


class SwitchSim:
    """An OpenFlow-style switch: flow tables + ports + packet buffers."""

    #: Capability flags advertised in features replies and the yanc
    #: ``capabilities`` file.
    CAPABILITIES = ("flow_stats", "table_stats", "port_stats")

    def __init__(
        self,
        dpid: int,
        name: str,
        sim: Simulator,
        *,
        num_buffers: int = 256,
        num_tables: int = 1,
    ) -> None:
        if not 0 < num_tables <= 255:
            raise ValueError(f"num_tables must be in 1..255, got {num_tables}")
        self.dpid = dpid
        self.name = name
        self.sim = sim
        self.num_buffers = num_buffers
        self.tables = [FlowTable(table_id=i) for i in range(num_tables)]
        self.ports: dict[int, PortSim] = {}
        self.controller: ControllerHooks | None = None
        self._buffers: dict[int, tuple[int, bytes]] = {}  # buffer_id -> (in_port, raw)
        self._next_buffer = 1
        self._expiry_task = None
        self.miss_send_len = 128
        self.rx_errors = 0

    @property
    def table(self) -> FlowTable:
        """Table 0, the single-table pipeline used by OpenFlow 1.0."""
        return self.tables[0]

    # -- ports -------------------------------------------------------------------

    def add_port(self, port_no: int | None = None, *, name: str = "", mac: MacAddress | None = None) -> PortSim:
        """Create a port (auto-numbered from 1 when ``port_no`` is None)."""
        if port_no is None:
            port_no = max(self.ports, default=0) + 1
        if port_no in self.ports:
            raise ValueError(f"port {port_no} already exists on {self.name}")
        if mac is None:
            mac = MacAddress((self.dpid << 16 | port_no) & ((1 << 48) - 1) | 0x02_00_00_00_00_00)
        port = PortSim(self, port_no, name or f"{self.name}-eth{port_no}", mac)
        self.ports[port_no] = port
        self.notify_port_status(port, "add")
        return port

    def remove_port(self, port_no: int) -> None:
        """Delete a port (its link must already be detached)."""
        port = self.ports.pop(port_no)
        self.notify_port_status(port, "delete")

    def notify_port_status(self, port: PortSim, reason: str) -> None:
        """Tell the agent about a port change."""
        if self.controller is not None:
            self.controller.port_status(self, port, reason)

    # -- pipeline ----------------------------------------------------------------

    def ingress(self, port: PortSim, raw: bytes) -> None:
        """Run a received frame through the flow table."""
        try:
            frame = parse_frame(raw)
        except ValueError:
            self.rx_errors += 1
            return
        entry = self.table.lookup(frame.key, port.port_no)
        if entry is None:
            self._punt(port.port_no, raw, PacketInReason.NO_MATCH)
            return
        entry.hit(self.sim.now, len(raw))
        self.apply_actions(entry.actions, frame, port.port_no)

    def apply_actions(self, actions: list[Action], frame: ParsedFrame, in_port: int) -> None:
        """Apply an action list: rewrites accumulate, outputs emit."""
        dirty = False
        for action in actions:
            if isinstance(action, Output):
                raw = frame.repack() if dirty else frame.raw
                dirty = False
                self._output(action.port, raw, in_port)
            else:
                action.apply(frame)
                dirty = True

    def _output(self, out_port: int, raw: bytes, in_port: int) -> None:
        if out_port == TO_CONTROLLER:
            self._punt(in_port, raw, PacketInReason.ACTION)
        elif out_port in (FLOOD, ALL):
            for port in self.ports.values():
                if port.port_no == in_port:
                    continue
                if out_port == FLOOD and not port.is_up:
                    continue
                port.transmit(raw)
        elif out_port == IN_PORT:
            self._transmit_on(in_port, raw)
        elif out_port == LOCAL:
            return  # no local networking stack in the simulator
        else:
            self._transmit_on(out_port, raw)

    def _transmit_on(self, port_no: int, raw: bytes) -> None:
        port = self.ports.get(port_no)
        if port is not None:
            port.transmit(raw)

    def _punt(self, in_port: int, raw: bytes, reason: PacketInReason) -> None:
        if self.controller is None:
            return
        if len(self._buffers) < self.num_buffers:
            buffer_id = self._next_buffer
            self._next_buffer += 1
            self._buffers[buffer_id] = (in_port, raw)
            data = raw[: self.miss_send_len]
        else:
            buffer_id = NO_BUFFER
            data = raw
        self.controller.packet_in(self, in_port, reason, buffer_id, data, len(raw))

    # -- controller-facing operations ------------------------------------------------

    def install_flow(self, entry: FlowEntry, *, buffer_id: int = NO_BUFFER) -> FlowEntry:
        """Install an entry; a buffered packet is released through it."""
        self.table.install(entry, now=self.sim.now)
        if buffer_id != NO_BUFFER:
            buffered = self._buffers.pop(buffer_id, None)
            if buffered is not None:
                in_port, raw = buffered
                frame = parse_frame(raw)
                entry.hit(self.sim.now, len(raw))
                self.apply_actions(entry.actions, frame, in_port)
        return entry

    def delete_flows(self, match, *, strict: bool = False, priority: int = 0x8000, notify: bool = False) -> int:
        """Delete matching entries; optionally send flow-removed."""
        removed = self.table.delete(match, strict=strict, priority=priority)
        if notify and self.controller is not None:
            for entry in removed:
                self.controller.flow_removed(self, entry, FlowRemovedReason.DELETE)
        return len(removed)

    def packet_out(self, actions: list[Action], *, buffer_id: int = NO_BUFFER, data: bytes = b"", in_port: int = 0) -> None:
        """Inject a packet through an action list (OpenFlow packet-out)."""
        if buffer_id != NO_BUFFER:
            buffered = self._buffers.pop(buffer_id, None)
            if buffered is None:
                return
            in_port, raw = buffered
        else:
            raw = data
        if not raw:
            return
        frame = parse_frame(raw)
        self.apply_actions(actions, frame, in_port)

    def start_expiry(self, interval: float = 1.0) -> None:
        """Begin the periodic timeout sweep (sends flow-removed)."""
        if self._expiry_task is not None:
            return
        self._expiry_task = self.sim.every(interval, self._sweep)

    def stop_expiry(self) -> None:
        """Stop the timeout sweep."""
        if self._expiry_task is not None:
            self._expiry_task.stop()
            self._expiry_task = None

    def _sweep(self) -> None:
        for table in self.tables:
            for entry, reason in table.expire(self.sim.now):
                if self.controller is not None:
                    self.controller.flow_removed(self, entry, reason)

    def features(self) -> dict[str, object]:
        """The switch description advertised to drivers."""
        return {
            "dpid": self.dpid,
            "num_buffers": self.num_buffers,
            "num_tables": len(self.tables),
            "capabilities": list(self.CAPABILITIES),
            "ports": sorted(self.ports),
        }
