"""Traffic-matrix replay: seeded pairwise host flows on the simulator.

The scenario pack's load generator.  A :class:`TrafficMatrix` is a
reproducible (seeded) list of host-to-host UDP flows with per-flow start
times, packet counts, and send intervals; :class:`TrafficReplay` drives
one against a :class:`~repro.dataplane.network.Network`, scheduling the
sends on the shared clock and attributing deliveries back to flows so a
run can be scored (packets offered vs. packets delivered).

Every flow gets a distinct UDP destination port, so delivery attribution
survives flooding: a datagram only counts for the flow whose port it
carries, arriving at the flow's destination host.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.dataplane.network import Network

#: First UDP destination port handed out to flows (one port per flow).
FLOW_PORT_BASE = 20000


@dataclass(frozen=True)
class TrafficFlow:
    """One host-pair flow in a traffic matrix."""

    src: str  # source host name
    dst: str  # destination host name
    packets: int
    start: float  # seconds after replay start
    interval: float  # seconds between packets
    dst_port: int  # unique per flow: the attribution key


class TrafficMatrix:
    """A seeded, reproducible set of pairwise host flows."""

    def __init__(self, flows: list[TrafficFlow]) -> None:
        self.flows = flows

    @property
    def packets_offered(self) -> int:
        return sum(flow.packets for flow in self.flows)

    @classmethod
    def uniform_random(
        cls,
        hosts: list[str],
        *,
        num_flows: int,
        packets_per_flow: int = 4,
        seed: int = 7,
        spread: float = 1.0,
        interval: float = 0.05,
    ) -> "TrafficMatrix":
        """``num_flows`` random ordered host pairs, starts spread over ``spread`` s."""
        if len(hosts) < 2:
            raise ValueError("need at least two hosts")
        rng = random.Random(seed)
        flows = []
        for index in range(num_flows):
            src, dst = rng.sample(hosts, 2)
            flows.append(
                TrafficFlow(
                    src=src,
                    dst=dst,
                    packets=packets_per_flow,
                    start=rng.uniform(0.0, spread),
                    interval=interval,
                    dst_port=FLOW_PORT_BASE + index,
                )
            )
        return cls(flows)

    @classmethod
    def all_pairs(
        cls,
        hosts: list[str],
        *,
        packets_per_flow: int = 2,
        spread: float = 1.0,
        interval: float = 0.05,
        seed: int = 7,
    ) -> "TrafficMatrix":
        """Every ordered host pair once (the dense permutation matrix)."""
        if len(hosts) < 2:
            raise ValueError("need at least two hosts")
        rng = random.Random(seed)
        flows = []
        index = 0
        for src in hosts:
            for dst in hosts:
                if src == dst:
                    continue
                flows.append(
                    TrafficFlow(
                        src=src,
                        dst=dst,
                        packets=packets_per_flow,
                        start=rng.uniform(0.0, spread),
                        interval=interval,
                        dst_port=FLOW_PORT_BASE + index,
                    )
                )
                index += 1
        return cls(flows)

    @classmethod
    def hotspot(
        cls,
        hosts: list[str],
        hot_host: str,
        *,
        num_flows: int,
        hot_fraction: float = 0.7,
        packets_per_flow: int = 4,
        seed: int = 7,
        spread: float = 1.0,
        interval: float = 0.05,
    ) -> "TrafficMatrix":
        """A skewed matrix: ``hot_fraction`` of flows target one host.

        The S-CORE migration scenario's shape — most traffic converges on
        one VM, so moving that VM next to its talkers collapses the
        weighted communication cost.
        """
        if hot_host not in hosts:
            raise ValueError(f"hot host {hot_host!r} not in host list")
        others = [h for h in hosts if h != hot_host]
        if not others:
            raise ValueError("need at least two hosts")
        rng = random.Random(seed)
        flows = []
        for index in range(num_flows):
            if rng.random() < hot_fraction:
                src, dst = rng.choice(others), hot_host
            else:
                src, dst = rng.sample(others, 2) if len(others) >= 2 else (others[0], hot_host)
            flows.append(
                TrafficFlow(
                    src=src,
                    dst=dst,
                    packets=packets_per_flow,
                    start=rng.uniform(0.0, spread),
                    interval=interval,
                    dst_port=FLOW_PORT_BASE + index,
                )
            )
        return cls(flows)


class TrafficReplay:
    """Drive a traffic matrix against a network's hosts."""

    def __init__(self, net: Network, matrix: TrafficMatrix, *, payload: bytes = b"x" * 64) -> None:
        self.net = net
        self.matrix = matrix
        self.payload = payload
        self.packets_sent = 0
        for flow in matrix.flows:
            if flow.src not in net.hosts or flow.dst not in net.hosts:
                raise ValueError(f"flow references unknown host: {flow.src} -> {flow.dst}")

    def start(self) -> None:
        """Schedule every packet of every flow on the shared clock."""
        for flow in self.matrix.flows:
            src = self.net.hosts[flow.src]
            dst = self.net.hosts[flow.dst]
            for n in range(flow.packets):
                when = flow.start + n * flow.interval

                def send(src=src, dst=dst, port=flow.dst_port):
                    src.send_udp(dst.ip, port, port, self.payload)
                    self.packets_sent += 1

                self.net.sim.schedule(when, send)

    def run(self, duration: float) -> "ReplayStats":
        """Start (if needed) and run the clock; returns the score."""
        if self.packets_sent == 0:
            self.start()
        self.net.run(duration)
        return self.stats()

    def delivered_for(self, flow: TrafficFlow) -> int:
        """Datagrams of this flow that reached its destination host."""
        dst = self.net.hosts[flow.dst]
        return sum(1 for _src_ip, udp in dst.udp_received if udp.dst_port == flow.dst_port)

    def stats(self) -> "ReplayStats":
        delivered = sum(min(self.delivered_for(f), f.packets) for f in self.matrix.flows)
        completed = sum(1 for f in self.matrix.flows if self.delivered_for(f) >= f.packets)
        return ReplayStats(
            flows=len(self.matrix.flows),
            flows_completed=completed,
            packets_offered=self.matrix.packets_offered,
            packets_delivered=delivered,
        )


@dataclass
class ReplayStats:
    """The score of one replay run."""

    flows: int
    flows_completed: int
    packets_offered: int
    packets_delivered: int

    @property
    def delivery_ratio(self) -> float:
        return self.packets_delivered / self.packets_offered if self.packets_offered else 0.0
