"""Topology builders for tests, examples, and benchmarks."""

from __future__ import annotations

import random

from repro.dataplane.network import Network
from repro.sim import Simulator


def build_linear(num_switches: int, *, hosts_per_switch: int = 1, sim: Simulator | None = None) -> Network:
    """A chain: sw1 - sw2 - ... - swN, each with local hosts."""
    if num_switches < 1:
        raise ValueError("need at least one switch")
    net = Network(sim)
    switches = [net.add_switch() for _ in range(num_switches)]
    for left, right in zip(switches, switches[1:]):
        net.link_switches(left, right)
    for switch in switches:
        for _ in range(hosts_per_switch):
            net.attach_host(net.add_host(), switch)
    return net


def build_ring(num_switches: int, *, hosts_per_switch: int = 1, sim: Simulator | None = None) -> Network:
    """A cycle of switches (exercises loop handling in discovery/routing)."""
    if num_switches < 3:
        raise ValueError("a ring needs at least three switches")
    net = Network(sim)
    switches = [net.add_switch() for _ in range(num_switches)]
    for index, switch in enumerate(switches):
        net.link_switches(switch, switches[(index + 1) % num_switches])
    for switch in switches:
        for _ in range(hosts_per_switch):
            net.attach_host(net.add_host(), switch)
    return net


def build_star(num_leaves: int, *, sim: Simulator | None = None) -> Network:
    """One core switch with ``num_leaves`` leaf switches, one host each."""
    if num_leaves < 1:
        raise ValueError("need at least one leaf")
    net = Network(sim)
    core = net.add_switch("core")
    for _ in range(num_leaves):
        leaf = net.add_switch()
        net.link_switches(core, leaf)
        net.attach_host(net.add_host(), leaf)
    return net


def build_tree(depth: int, fanout: int, *, sim: Simulator | None = None) -> Network:
    """A complete tree of switches with hosts on the leaves."""
    if depth < 1 or fanout < 1:
        raise ValueError("depth and fanout must be >= 1")
    net = Network(sim)
    root = net.add_switch()
    frontier = [root]
    for _ in range(depth - 1):
        next_frontier = []
        for parent in frontier:
            for _ in range(fanout):
                child = net.add_switch()
                net.link_switches(parent, child)
                next_frontier.append(child)
        frontier = next_frontier
    for leaf in frontier:
        net.attach_host(net.add_host(), leaf)
    return net


def build_fat_tree(k: int = 4, *, sim: Simulator | None = None) -> Network:
    """A k-ary fat tree (k even): (k/2)^2 cores, k pods, (k/2)^2*k hosts...

    Scaled-down standard datacenter topology: each pod has k/2 aggregation
    and k/2 edge switches; each edge switch hosts k/2 hosts.
    """
    if k < 2 or k % 2:
        raise ValueError("fat tree parameter k must be even and >= 2")
    net = Network(sim)
    half = k // 2
    cores = [net.add_switch(f"core{i + 1}") for i in range(half * half)]
    for pod in range(k):
        aggs = [net.add_switch(f"p{pod}a{i + 1}") for i in range(half)]
        edges = [net.add_switch(f"p{pod}e{i + 1}") for i in range(half)]
        for agg in aggs:
            for edge in edges:
                net.link_switches(agg, edge)
        for agg_index, agg in enumerate(aggs):
            for core_index in range(half):
                net.link_switches(agg, cores[agg_index * half + core_index])
        for edge in edges:
            for _ in range(half):
                net.attach_host(net.add_host(), edge)
    return net


def build_clos(
    num_spines: int = 2,
    num_leaves: int = 4,
    *,
    hosts_per_leaf: int = 2,
    sim: Simulator | None = None,
) -> Network:
    """A two-tier spine-leaf Clos: every leaf uplinks to every spine.

    The standard modern datacenter fabric — all leaf pairs are exactly
    two hops apart and the spine tier spreads load across
    ``num_spines`` equal-cost paths.  Switches are named ``spine<i>``
    and ``leaf<i>``; hosts hang off the leaves.
    """
    if num_spines < 1 or num_leaves < 1:
        raise ValueError("need at least one spine and one leaf")
    net = Network(sim)
    spines = [net.add_switch(f"spine{i + 1}") for i in range(num_spines)]
    for leaf_index in range(num_leaves):
        leaf = net.add_switch(f"leaf{leaf_index + 1}")
        for spine in spines:
            net.link_switches(leaf, spine)
        for _ in range(hosts_per_leaf):
            net.attach_host(net.add_host(), leaf)
    return net


def build_campus(
    num_buildings: int = 3,
    floors_per_building: int = 2,
    *,
    hosts_per_floor: int = 2,
    sim: Simulator | None = None,
) -> Network:
    """A three-tier campus: core pair, per-building distribution, access.

    Two core switches (linked to each other) each connect to every
    building's distribution switch; each floor's access switch dual-homes
    to its building's distribution and hosts the floor's machines.
    Names: ``core1``/``core2``, ``b<i>d``, ``b<i>f<j>``.
    """
    if num_buildings < 1 or floors_per_building < 1:
        raise ValueError("need at least one building and one floor")
    net = Network(sim)
    core_a = net.add_switch("core1")
    core_b = net.add_switch("core2")
    net.link_switches(core_a, core_b)
    for b in range(num_buildings):
        dist = net.add_switch(f"b{b + 1}d")
        net.link_switches(dist, core_a)
        net.link_switches(dist, core_b)
        for f in range(floors_per_building):
            access = net.add_switch(f"b{b + 1}f{f + 1}")
            net.link_switches(access, dist)
            for _ in range(hosts_per_floor):
                net.attach_host(net.add_host(), access)
    return net


def build_random(num_switches: int, *, edge_probability: float = 0.3, seed: int = 7, sim: Simulator | None = None) -> Network:
    """A connected Erdős–Rényi-ish random switch graph with one host each.

    A spanning chain guarantees connectivity; extra edges appear with
    ``edge_probability`` under a seeded RNG so runs are reproducible.
    """
    if num_switches < 1:
        raise ValueError("need at least one switch")
    rng = random.Random(seed)
    net = Network(sim)
    switches = [net.add_switch() for _ in range(num_switches)]
    for left, right in zip(switches, switches[1:]):
        net.link_switches(left, right)
    for i in range(num_switches):
        for j in range(i + 2, num_switches):
            if rng.random() < edge_probability:
                net.link_switches(switches[i], switches[j])
    for switch in switches:
        net.attach_host(net.add_host(), switch)
    return net
