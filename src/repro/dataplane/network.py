"""The network container: switches, hosts, and the links between them."""

from __future__ import annotations

from ipaddress import IPv4Address

from repro.dataplane.host import HostSim
from repro.dataplane.link import Link
from repro.dataplane.switch import PortSim, SwitchSim
from repro.netpkt.addr import MacAddress, ip
from repro.sim import Simulator


class Network:
    """A set of simulated switches, hosts, and links on one clock."""

    def __init__(self, sim: Simulator | None = None, *, default_latency: float = 1e-4) -> None:
        self.sim = sim or Simulator()
        self.default_latency = default_latency
        self.switches: dict[str, SwitchSim] = {}
        self.hosts: dict[str, HostSim] = {}
        self.links: list[Link] = []
        self._next_dpid = 1
        self._next_host = 1

    # -- element creation ------------------------------------------------------------

    def add_switch(self, name: str = "", *, dpid: int | None = None, num_tables: int = 1) -> SwitchSim:
        """Create a switch (auto dpid/name when omitted)."""
        if dpid is None:
            dpid = self._next_dpid
        self._next_dpid = max(self._next_dpid, dpid) + 1
        name = name or f"sw{dpid}"
        if name in self.switches:
            raise ValueError(f"duplicate switch name {name!r}")
        switch = SwitchSim(dpid, name, self.sim, num_tables=num_tables)
        self.switches[name] = switch
        return switch

    def add_host(self, name: str = "", *, ip_addr: IPv4Address | str | None = None, mac: MacAddress | None = None) -> HostSim:
        """Create a host (auto addressing in 10.0.0.0/8 when omitted)."""
        index = self._next_host
        self._next_host += 1
        name = name or f"h{index}"
        if name in self.hosts:
            raise ValueError(f"duplicate host name {name!r}")
        if ip_addr is None:
            ip_addr = f"10.0.{index // 256}.{index % 256}"
        if mac is None:
            mac = MacAddress(0x0A_00_00_00_00_00 + index)
        host = HostSim(name, mac, ip(ip_addr), self.sim)
        self.hosts[name] = host
        return host

    # -- wiring ------------------------------------------------------------------------

    def link_switches(self, a: SwitchSim, b: SwitchSim, *, latency: float | None = None) -> tuple[PortSim, PortSim]:
        """Join two switches with a new port on each."""
        port_a = a.add_port()
        port_b = b.add_port()
        link = Link(self.sim, port_a, port_b, latency=self.default_latency if latency is None else latency)
        port_a.link = link
        port_b.link = link
        self.links.append(link)
        return port_a, port_b

    def attach_host(self, host: HostSim, switch: SwitchSim, *, latency: float | None = None) -> PortSim:
        """Join a host to a switch with a new switch port."""
        port = switch.add_port()
        link = Link(self.sim, port, host, latency=self.default_latency if latency is None else latency)
        port.link = link
        host.link = link
        self.links.append(link)
        return port

    # -- queries -------------------------------------------------------------------------

    def switch_port_peers(self) -> dict[tuple[str, int], tuple[str, int]]:
        """Ground-truth inter-switch adjacency: (sw, port) -> (sw, port).

        Discovery tests compare the topology daemon's symlinks to this.
        """
        peers: dict[tuple[str, int], tuple[str, int]] = {}
        for link in self.links:
            if isinstance(link.a, PortSim) and isinstance(link.b, PortSim):
                key_a = (link.a.switch.name, link.a.port_no)
                key_b = (link.b.switch.name, link.b.port_no)
                peers[key_a] = key_b
                peers[key_b] = key_a
        return peers

    def host_ports(self) -> dict[str, tuple[str, int]]:
        """Where each host attaches: host name -> (switch, port)."""
        out: dict[str, tuple[str, int]] = {}
        for link in self.links:
            endpoints = (link.a, link.b)
            for endpoint, other in (endpoints, endpoints[::-1]):
                if isinstance(endpoint, HostSim) and isinstance(other, PortSim):
                    out[endpoint.name] = (other.switch.name, other.port_no)
        return out

    def run(self, duration: float = 1.0) -> int:
        """Advance the shared clock; returns events fired."""
        return self.sim.run_for(duration)
