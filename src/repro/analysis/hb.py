"""Happens-before primitives for yancrace: vector clocks and actors.

The race detector (:mod:`repro.analysis.race`) models every syscall
context — each :class:`~repro.proc.process.Process` owns one, and plain
test-harness :class:`~repro.vfs.syscalls.Syscalls` instances count too —
as an *actor* carrying a vector clock.  The clock maps actor id to the
last tick of that actor known to have happened before the carrier's
current instruction.  An access recorded as ``(actor A, tick T)``
happens-before actor B's current instruction iff ``B.clock[A] >= T`` —
the FastTrack-style O(1) check that makes per-syscall race detection
affordable.

Edges are created by the substrate's real synchronization points (notify
delivery, epoll wakeups, version-file commits, scheduling, RPC); the
clock algebra here is deliberately generic and knows nothing about them.
"""

from __future__ import annotations


class VectorClock(dict):
    """A vector clock: actor id -> highest tick known to happen-before.

    Implemented as a plain dict subclass (no wrapper indirection) because
    merge/covers sit on the per-syscall hot path of the detector.
    """

    __slots__ = ()

    def tick(self, aid: int) -> int:
        """Advance ``aid``'s own component; returns the new tick."""
        value = self.get(aid, 0) + 1
        self[aid] = value
        return value

    def merge(self, other: "VectorClock | dict") -> None:
        """Pointwise maximum: acquire everything ``other`` has seen."""
        for aid, tick in other.items():
            if self.get(aid, 0) < tick:
                self[aid] = tick

    def covers(self, aid: int, tick: int) -> bool:
        """True when ``(aid, tick)`` happens-before the carrier's now."""
        return self.get(aid, 0) >= tick

    def snapshot(self) -> "VectorClock":
        """An immutable-by-convention copy (release points store these)."""
        return VectorClock(self)


class Actor:
    """One concurrency participant: a syscall context plus its clock.

    ``sc`` is pinned so ``id(sc)`` (the actor key) cannot be recycled by
    the allocator while the detector still holds history naming it.
    """

    __slots__ = ("aid", "sc", "clock", "barrier_epoch")

    def __init__(self, aid: int, sc: object | None = None) -> None:
        self.aid = aid
        self.sc = sc
        self.clock = VectorClock()
        #: Last global-barrier generation merged into this clock (the
        #: detector joins all actors at simulator quiescence points).
        self.barrier_epoch = 0

    def describe(self) -> str:
        """``pid N (name)`` when the context is owned by a process."""
        if self.sc is None:
            return "harness"
        pid = getattr(self.sc, "owner_pid", 0)
        name = getattr(self.sc, "owner_name", "")
        if pid:
            return f"pid {pid} ({name or 'proc'})"
        return name or f"sc@{self.aid:#x}"
