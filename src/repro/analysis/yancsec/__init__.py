"""yancsec — capability & tenant-isolation analysis (§5.3/§5.4).

Two cooperating passes, mirroring the yancrace/yanccrash static+dynamic
pairing:

* the **static pass** (:mod:`repro.analysis.yancsec.checker`) extends the
  yancpath interprocedural interpreter with a taint lattice and per-call
  credential summaries, judging every syscall site for tainted paths,
  ambient root authority, ACL coverage gaps, slice escapes, and
  unauthenticated distfs RPCs;
* the **runtime pass** (:mod:`repro.analysis.yancsec.monitor`,
  ``YANCSEC=1``) is a reference monitor on the ``Syscalls`` choke points
  that records (uid, namespace, path-prefix) access tuples and flags
  root-running apps, cross-tenant reads, and ambient writes.
"""

from repro.analysis.core import register_suppression_tool
from repro.analysis.yancsec.checker import KINDS, analyze_sources, analyze_yancsec
from repro.analysis.yancsec.monitor import (
    SecFinding,
    SecurityMonitor,
    active,
    enabled,
    install_from_env,
    reset_all,
)

register_suppression_tool("yancsec")

__all__ = [
    "KINDS",
    "SecFinding",
    "SecurityMonitor",
    "active",
    "enabled",
    "analyze_sources",
    "analyze_yancsec",
    "install_from_env",
    "reset_all",
]
