"""yancsec static pass: capability & tenant-isolation findings.

The pass rides on the yancpath abstract interpreter and extends it with
two lattices:

* a **taint lattice** over local values: reads of tenant-reachable state
  (packet/event payloads, yanc attribute files — recognized by matching
  the read site's path pattern against the schema-derived namespace
  grammar) mark a value tainted; string assembly (concatenation,
  f-strings, ``os.path.join``, ``format``) propagates taint; a validator
  on the way — an ``if`` that tests the value, or a call whose name says
  it validates/sanitizes — clears it.  A tainted value landing in a
  *path* argument of a syscall, or crossing a distfs RPC boundary, is a
  ``tainted-path`` finding: the tenant who controls the data controls
  which file the program touches.
* a **credential-effect summary** per function: every ``Syscalls`` /
  ``Process`` receiver is typed by how it was constructed
  (``Syscalls(vfs)`` is root; ``host.process(...)`` is a per-name app or
  driver uid; ``spawn(cred=...)`` and explicit ``cred=`` keywords follow
  the credential expression), so each syscall site knows which
  ``Credentials`` it executes under.

Five finding kinds judge the syscall sites:

* ``tainted-path`` (error) — see above; sources and sinks both live in
  app/example scope, where tenant data enters the system.
* ``root-ambient`` (error) — a mutating operation in app scope executes
  under uid 0 against the yanc tree, where the schema's ACLs would grant
  a per-app uid instead (§5.1: ambient root authority defeats the
  file-system isolation story).
* ``missing-acl`` (warning) — a write lands on a schema-stamped,
  world-readable file that carries **no** ACL while the writer's scope
  differs from the scope that creates the node: without an ACL the write
  works only for the creating uid, so the collaboration relies on
  everything running as root.  ACLs are read off the live schema nodes
  via :meth:`NamespaceModel.match_file_nodes`.
* ``slice-escape`` (error) — a path token-string in app scope contains a
  literal ``..`` segment while naming the yanc tree: inside a shared
  namespace the expression walks out of the slice root (the runtime
  clamps ``..`` only at the *namespace* root, see views/namespace.py).
* ``unauthenticated-rpc`` (warning) — an ``RpcChannel`` constructed
  without ``cred=``: every op the channel carries executes under the
  file server's own credentials instead of the caller's (AUTH_SYS-style
  identity is threaded since the distfs caller-identity change).

Suppressions are ``# yancsec: disable=<kind>`` comments (the yanclint
spelling works too).  Like the rest of the suite, the pass errs toward
silence: unresolvable paths, unknown receivers, and values that passed
through calls it cannot see are never flagged.
"""

from __future__ import annotations

import ast
import re
from typing import Callable, Iterable

from repro.analysis.core import Finding, Severity, SourceFile
from repro.analysis.yancpath import patterns as P
from repro.analysis.yancpath.grammar import MatchResult, NamespaceModel
from repro.analysis.yancpath.interp import (
    PATH_ARGS,
    FuncDecl,
    FuncInterp,
    ModuleInfo,
    ProjectIndex,
)

KINDS = (
    "tainted-path",
    "root-ambient",
    "missing-acl",
    "slice-escape",
    "unauthenticated-rpc",
)

_SEVERITY = {
    "tainted-path": Severity.ERROR,
    "root-ambient": Severity.ERROR,
    "missing-acl": Severity.WARNING,
    "slice-escape": Severity.ERROR,
    "unauthenticated-rpc": Severity.WARNING,
}

#: Syscalls that change the tree (the root-ambient surface).
_MUTATORS = frozenset(
    {
        "write_text",
        "write_bytes",
        "mkdir",
        "makedirs",
        "rmdir",
        "unlink",
        "rename",
        "symlink",
        "link",
        "truncate",
        "chmod",
        "chown",
    }
)

#: String operations that carry taint from receiver/arguments to result.
_PROPAGATORS = frozenset(
    {
        "strip",
        "lstrip",
        "rstrip",
        "lower",
        "upper",
        "title",
        "decode",
        "encode",
        "format",
        "removeprefix",
        "removesuffix",
        "split",
        "rsplit",
        "partition",
        "rpartition",
        "join",
        "replace",
    }
)

#: A call whose name says it judges its input counts as the validator
#: between source and sink (flow_file_validator, sanitize_name, ...).
_SANITIZER = re.compile(r"valid|sanitiz|check|clean|escape|quote|safe|basename", re.I)


class _Matcher:
    """Memoized grammar queries, keyed by raw path token-strings.

    The same token string recurs across sites and functions, and every
    :meth:`NamespaceModel.match` costs metered probe syscalls — caching
    here keeps the sweep's probe traffic proportional to the number of
    *distinct* path expressions, not syscall sites.
    """

    def __init__(self, model: NamespaceModel) -> None:
        self.model = model
        self._results: dict[tuple, MatchResult | None] = {}
        self._files: dict[tuple, list[tuple[str, object]]] = {}

    def result(self, tokens: tuple | None) -> MatchResult | None:
        """Match one token string against the namespace; None = unjudgeable."""
        if not tokens:
            return None
        if tokens not in self._results:
            pattern = P.finalize(tokens)
            result = None if pattern is None else self.model.match(pattern)
            if result is not None and not result.applicable:
                result = None
            self._results[tokens] = result
        return self._results[tokens]

    def file_nodes(self, tokens: tuple) -> list[tuple[str, object]]:
        """Schema-stamped files the token string can land on."""
        if tokens not in self._files:
            pattern = P.finalize(tokens)
            self._files[tokens] = [] if pattern is None else self.model.match_file_nodes(pattern)
        return self._files[tokens]


# -- credential-effect summaries -------------------------------------------------------


def _callee_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _classify_cred_expr(expr: ast.expr) -> str:
    """What credential class an expression evaluates to."""
    if isinstance(expr, ast.Name) and expr.id == "ROOT":
        return "root"
    if isinstance(expr, ast.Call):
        name = _callee_name(expr.func)
        if name == "app_credentials":
            return "app"
        if name == "driver_credentials":
            return "driver"
        if name == "Credentials":
            for kw in expr.keywords:
                if kw.arg == "uid" and isinstance(kw.value, ast.Constant):
                    return "root" if kw.value.value == 0 else "user"
    return "unknown"


def classify_constructor(call: ast.Call) -> str | None:
    """The credential class a Syscalls/Process-producing call yields.

    Returns None for calls that produce no syscall context (so the
    receiver stays untyped and the pass errs toward silence).
    """
    name = _callee_name(call.func)
    keywords = {kw.arg: kw.value for kw in call.keywords if kw.arg}
    if name == "Syscalls":
        if "cred" not in keywords:
            return "root"
        return _classify_cred_expr(keywords["cred"])
    if name == "process":
        if "cred" in keywords:
            return _classify_cred_expr(keywords["cred"])
        role = keywords.get("role")
        if isinstance(role, ast.Constant) and role.value == "driver":
            return "driver"
        return "app"
    if name == "spawn":
        if "cred" in keywords:
            return _classify_cred_expr(keywords["cred"])
        return None  # inherits the parent context's credentials
    return None


def _receiver_key(expr: ast.expr) -> str | None:
    """The summary key for a receiver expression (``sc`` or ``.sc``)."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name) and expr.value.id == "self":
        return f".{expr.attr}"
    return None


def credential_summary(module: ModuleInfo, decl: FuncDecl | None) -> dict[str, str]:
    """receiver key -> credential class, for one function's visible scope.

    Derived from receiver typing: assignments in the module body, the
    enclosing class's ``__init__``, and the function body itself (inner
    assignments win).
    """
    bodies: list[list[ast.stmt]] = [
        [stmt for stmt in module.src.tree.body if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))]
    ]
    if decl is not None and decl.class_name:
        init = module.by_class.get(decl.class_name, {}).get("__init__")
        if init is not None:
            bodies.append(init.node.body)
    if decl is not None:
        bodies.append(decl.node.body)
    out: dict[str, str] = {}
    for body in bodies:
        for stmt in body:
            for node in ast.walk(stmt):
                if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                    continue
                cred = classify_constructor(node.value)
                if cred is None:
                    continue
                for target in node.targets:
                    key = _receiver_key(target)
                    if key is not None:
                        out[key] = cred
    return out


# -- the taint lattice -----------------------------------------------------------------


def taint_sources(interp: FuncInterp, matcher: _Matcher) -> dict[int, str]:
    """id(call node) -> origin label, for reads of tenant-reachable state."""
    out: dict[int, str] = {}
    # Probe-tree matches are analysis-time traffic, memoized in _Matcher.
    for site in interp.sites:  # yancperf: disable=syscall-in-loop
        if not site.paths:
            continue
        result = matcher.result(site.paths[0])
        if result is None or not result.matched:
            continue
        spooled = any(r.in_event_buffer or r.in_packet_out for r in result.resolutions)
        if site.method in ("read_text", "read_bytes"):
            origin = "a packet/event payload" if spooled else "a yanc attribute file"
            out[id(site.node)] = f"{site.method}() of {origin}"
        elif site.method in ("listdir", "scandir") and spooled:
            out[id(site.node)] = f"{site.method}() of a packet/event spool"
    return out


class _TaintPass:
    """Forward, per-function taint propagation with in-place sink checks."""

    def __init__(
        self,
        sites: dict[int, object],
        sources: dict[int, str],
        emit: Callable[[str, ast.AST, str], None],
    ) -> None:
        self.sites = sites
        self.sources = sources
        self.emit = emit
        self.tainted: set[str] = set()

    # -- statements --------------------------------------------------------------

    def run(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions get their own interp
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            if stmt.value is None:
                return
            taint = self._expr(stmt.value)
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                key = _receiver_key(target)
                if key is None:
                    for node in ast.walk(target):
                        if isinstance(node, ast.Name):
                            self._set(node.id, taint)
                    continue
                if isinstance(stmt, ast.AugAssign):
                    taint = taint or key in self.tainted
                self._set(key, taint)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.test)
            self._untaint_tested(stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self._expr(stmt.iter)
            for _ in range(2):  # twice: loop-carried taint reaches sinks
                for node in ast.walk(stmt.target):
                    if isinstance(node, ast.Name):
                        self._set(node.id, taint)
                self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.test)
            for _ in range(2):
                self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self._expr(item.context_expr)
                if item.optional_vars is not None:
                    for node in ast.walk(item.optional_vars):
                        if isinstance(node, ast.Name):
                            self._set(node.id, taint)
            self.run(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                self.run(handler.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)
        else:
            for node in ast.iter_child_nodes(stmt):
                if isinstance(node, ast.expr):
                    self._expr(node)

    def _set(self, key: str, taint: bool) -> None:
        if taint:
            self.tainted.add(key)
        else:
            self.tainted.discard(key)

    def _untaint_tested(self, test: ast.expr) -> None:
        """An ``if`` that inspects a tainted value is its validator."""
        for node in ast.walk(test):
            key = _receiver_key(node) if isinstance(node, (ast.Name, ast.Attribute)) else None
            if key is not None:
                self.tainted.discard(key)

    # -- expressions -------------------------------------------------------------

    def _expr(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Call):
            return self._call(expr)
        key = _receiver_key(expr) if isinstance(expr, (ast.Name, ast.Attribute)) else None
        if key is not None:
            return key in self.tainted
        if isinstance(expr, ast.BinOp):
            left = self._expr(expr.left)
            right = self._expr(expr.right)
            return left or right
        if isinstance(expr, ast.JoinedStr):
            return any(self._expr(v.value) for v in expr.values if isinstance(v, ast.FormattedValue))
        if isinstance(expr, ast.FormattedValue):
            return self._expr(expr.value)
        if isinstance(expr, ast.Subscript):
            self._expr(expr.slice)
            return self._expr(expr.value)
        if isinstance(expr, ast.IfExp):
            self._expr(expr.test)
            body = self._expr(expr.body)
            orelse = self._expr(expr.orelse)
            return body or orelse
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return any(self._expr(e) for e in expr.elts)
        if isinstance(expr, ast.Starred):
            return self._expr(expr.value)
        if isinstance(expr, ast.Attribute):
            return self._expr(expr.value)
        if isinstance(expr, (ast.BoolOp,)):
            return any(self._expr(v) for v in expr.values)
        for node in ast.iter_child_nodes(expr):
            if isinstance(node, ast.expr):
                self._expr(node)
        return False

    def _call(self, call: ast.Call) -> bool:
        arg_taints = [self._expr(arg) for arg in call.args]
        kw_taints = [self._expr(kw.value) for kw in call.keywords]
        site = self.sites.get(id(call))
        if site is not None:
            for position in PATH_ARGS.get(site.method, ()):
                if position < len(call.args) and arg_taints[position]:
                    self.emit(
                        "tainted-path",
                        call,
                        f"path handed to {site.method}() is assembled from "
                        "tenant-controlled data with no validator between "
                        "source and sink — the data's author picks which "
                        "file this touches; validate the value first",
                    )
                    break
        elif FuncInterp._is_rpc(call) and (any(arg_taints) or any(kw_taints)):
            self.emit(
                "tainted-path",
                call,
                "tenant-controlled data crosses the distfs RPC boundary "
                "with no validator between source and sink — the server "
                "resolves whatever path/argument the tenant supplied",
            )
        if id(call) in self.sources:
            return True
        func = call.func
        if isinstance(func, ast.Name):
            if _SANITIZER.search(func.id):
                self._untaint_args(call)
                return False
            if func.id in ("str", "repr", "format", "bytes"):
                return any(arg_taints)
            return False
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if _SANITIZER.search(attr):
                self._untaint_args(call)
                return False
            receiver_taint = self._expr(func.value)
            if attr == "replace" and call.args and isinstance(call.args[0], ast.Constant) and call.args[0].value in ("/", "..", "\\"):
                return False  # stripping separators IS the sanitization
            if attr in _PROPAGATORS:
                return receiver_taint or any(arg_taints)
            return False
        return False

    def _untaint_args(self, call: ast.Call) -> None:
        for arg in call.args:
            key = _receiver_key(arg)
            if key is not None:
                self.tainted.discard(key)


# -- per-kind judgments ---------------------------------------------------------------


def _check_root_ambient(
    interp: FuncInterp,
    creds: dict[str, str],
    matcher: _Matcher,
    emit: Callable[[str, ast.AST, str], None],
) -> None:
    # Probe-tree matches are analysis-time traffic, memoized in _Matcher.
    for site in interp.sites:  # yancperf: disable=syscall-in-loop
        if site.method not in _MUTATORS or not site.paths:
            continue
        func = site.node.func
        if not isinstance(func, ast.Attribute):
            continue
        key = _receiver_key(func.value)
        if key is None or creds.get(key) != "root":
            continue
        result = matcher.result(site.paths[0])
        if result is None or not result.matched:
            continue
        emit(
            "root-ambient",
            site.node,
            f"{site.method}() on the yanc tree executes under uid 0 "
            "(receiver built without credentials) — the schema's ACLs "
            "grant this to a per-app uid; use host.process() or "
            "app_credentials() instead of ambient root",
        )


def _creator_scope(path: str) -> str | None:
    """Which scope class creates a probe-tree node at ``path``."""
    parts = [part for part in path.split("/") if part]
    if parts and parts[0] == "net":
        parts = parts[1:]
    while len(parts) >= 2 and parts[0] == "views":
        parts = parts[2:]  # view subtrees mirror the master classes
    if not parts:
        return None
    head = parts[0]
    if head in ("hosts", "apps"):
        return "app"
    if head == "middleboxes":
        return "driver"
    if head == "switches":
        if "flows" in parts or "events" in parts:
            return "app"  # flows and event buffers are app-created
        return "driver"
    return None


def _check_missing_acl(
    interp: FuncInterp,
    matcher: _Matcher,
    scope_class: str,
    emit: Callable[[str, ast.AST, str], None],
) -> None:
    # Probe-tree matches are analysis-time traffic, memoized in _Matcher.
    for site in interp.sites:  # yancperf: disable=syscall-in-loop
        if site.method not in ("write_text", "write_bytes") or not site.paths:
            continue
        seen: set[str] = set()
        for path, node in matcher.file_nodes(site.paths[0]):
            if path in seen:
                continue
            seen.add(path)
            if getattr(node, "acl", None) is not None:
                continue
            if not getattr(node, "mode", 0) & 0o004:
                continue  # not reader-visible: private by construction
            creator = _creator_scope(path)
            if creator is None or creator == scope_class:
                continue
            basename = path.rsplit("/", 1)[-1]
            emit(
                "missing-acl",
                site.node,
                f"writes `{basename}` ({path}), a world-readable schema "
                f"file with no ACL created by {creator}-scope code: the "
                "write succeeds only for the creating uid — stamp a "
                "schema ACL on the node so the collaboration is policy, "
                "not root",
            )
            break


def _names_yanc_tree(tokens: tuple, model: NamespaceModel) -> bool:
    texts = {token[1] for token in tokens if isinstance(token, tuple) and len(token) == 2 and token[0] == "text"}
    texts.discard("..")
    return "net" in texts or bool(texts & model.dir_vocab)


def _check_slice_escape(
    interp: FuncInterp,
    model: NamespaceModel,
    emit: Callable[[str, ast.AST, str], None],
) -> None:
    for site in interp.sites:
        for tokens in site.paths:
            if any(token == ("text", "..") for token in tokens) and _names_yanc_tree(tokens, model):
                emit(
                    "slice-escape",
                    site.node,
                    f"{site.method}() path contains a `..` segment while "
                    "naming the yanc tree: in a shared namespace the "
                    "expression resolves outside the slice root — address "
                    "views downward only (the runtime clamps `..` at the "
                    "namespace root, not the view root)",
                )
                break


def _check_unauthenticated_rpc(src: SourceFile, emit: Callable[[str, ast.AST, str], None]) -> None:
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call) or _callee_name(node.func) != "RpcChannel":
            continue
        if any(kw.arg == "cred" for kw in node.keywords):
            continue
        emit(
            "unauthenticated-rpc",
            node,
            "RpcChannel built without cred=: every op this channel "
            "carries executes under the file server's own credentials, "
            "so the remote caller inherits the server's authority — "
            "thread the client's Credentials through the channel",
        )


# -- orchestration ---------------------------------------------------------------------


def analyze_yancsec(paths: list[str], *, model: NamespaceModel | None = None) -> list[Finding]:
    """Run the capability/tenant-isolation static pass over files/dirs."""
    from repro.analysis.loader import load_files

    sources, findings = load_files(paths)
    findings.extend(analyze_sources(sources, model=model))
    findings.sort(key=Finding.sort_key)
    return findings


def analyze_sources(
    sources: Iterable[SourceFile], *, model: NamespaceModel | None = None
) -> list[Finding]:
    """Analyze already-parsed sources (the CLI adds loader findings)."""
    from repro.analysis.yancpath.checker import make_judge

    sources = list(sources)
    if model is None:
        model = NamespaceModel.build()
    matcher = _Matcher(model)
    index = ProjectIndex(sources, make_judge(model))
    out: list[Finding] = []
    for module in index.modules:
        src: SourceFile = module.src
        emitted: set[tuple[int, int, str]] = set()

        def emit(kind: str, node, message: str) -> None:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0) + 1
            key = (line, col, kind)
            if key in emitted or src.is_suppressed(kind, line):
                return
            emitted.add(key)
            out.append(
                Finding(
                    path=src.path,
                    line=line,
                    col=col,
                    rule=kind,
                    severity=_SEVERITY[kind],
                    message=message,
                )
            )

        tenant_scoped = "app" in src.scopes or "example" in src.scopes
        scope_class = "app" if tenant_scoped else ("driver" if "driver" in src.scopes else None)
        interps = [FuncInterp(index, None, module=module)]
        interps += [FuncInterp(index, decl) for decl in module.functions]
        # The per-interp judgments reach the probe tree via _Matcher's memo.
        for interp in interps:  # yancperf: disable=syscall-in-loop
            interp.run()
            if tenant_scoped:
                _check_slice_escape(interp, model, emit)
                creds = credential_summary(module, interp.decl)
                _check_root_ambient(interp, creds, matcher, emit)
                sites = {id(site.node): site for site in interp.sites}
                body = interp.decl.node.body if interp.decl is not None else module.src.tree.body
                _TaintPass(sites, taint_sources(interp, matcher), emit).run(body)
            if scope_class is not None:
                _check_missing_acl(interp, matcher, scope_class, emit)
        _check_unauthenticated_rpc(src, emit)
    return out


__all__ = [
    "KINDS",
    "analyze_sources",
    "analyze_yancsec",
    "classify_constructor",
    "credential_summary",
    "taint_sources",
]
