"""yancsec runtime pass: a reference monitor on the ``Syscalls`` choke points.

Every VFS operation in this repo funnels through a handful of ``Syscalls``
methods — the same property the paper leans on for §5 isolation ("each
process only needs file I/O").  With ``YANCSEC=1`` those choke points are
tapped and three invariants are enforced while a workload runs:

``root-app``
    A process spawned in the *app* role must never execute a syscall with
    uid 0.  Apps get per-name credentials from :func:`repro.vfs.cred.
    app_credentials`; an app-role context running as root means ambient
    authority leaked back in.

``cross-tenant-read``
    ``/net/apps/<name>/`` is a private home.  A non-root process whose uid
    differs from the home owner's must not read below it.

``ambient-write``
    Writes by app-role processes must land inside a registered controller
    tree (``/net`` by default) or a shared spool (``/var``, ``/tmp``);
    writes into another principal's home are flagged under the same kind.

The monitor also records every successful access as a ``(uid, namespace,
path-prefix)`` tuple — the dynamic ground truth the static pass
(:mod:`repro.analysis.yancsec.checker`) is calibrated against, exactly as
yancrace pairs its lockset pass with the runtime detector.

Batched I/O caveat: ring operations bypass the per-path ``Syscalls``
methods, so the monitor taps ``io_uring_setup`` instead — an app-role
context running as uid 0 is caught at ring creation, before any batched
submission executes.
"""

from __future__ import annotations

import atexit
import os
import sys
from dataclasses import dataclass

from repro.vfs.syscalls import O_CREAT, O_RDWR, O_TRUNC, O_WRONLY, Syscalls

__all__ = [
    "SecFinding",
    "SecurityMonitor",
    "active",
    "enabled",
    "install_from_env",
    "register_root",
    "reset_all",
]

#: Spool prefixes every host ships writable (see ``ControllerHost``).
_SHARED_PREFIXES = ("/var", "/tmp", "/proc", "/dev")


@dataclass(frozen=True)
class SecFinding:
    """One reference-monitor violation."""

    kind: str
    detail: str

    def __str__(self) -> str:
        return f"yancsec [{self.kind}] {self.detail}"


def _prefix(path: str, depth: int = 2) -> str:
    """The first ``depth`` components of ``path`` — the access-tuple key."""
    parts = [p for p in path.split("/") if p]
    return "/" + "/".join(parts[:depth])


class SecurityMonitor:
    """Records access tuples and flags isolation violations at runtime."""

    def __init__(self) -> None:
        #: Violations in discovery order (deduplicated by ``_seen``).
        self.findings: list[SecFinding] = []
        #: Successful accesses as (uid, namespace name, path prefix).
        self.accesses: set[tuple[int, str, str]] = set()
        self._seen: set[tuple[object, ...]] = set()
        #: Controller mount points (``ControllerHost`` registers its own).
        self._roots: list[str] = []
        self._allowed: list[str] = list(_SHARED_PREFIXES)
        #: ``/net/apps/<name>`` -> owner uid, learned from tapped chowns.
        self._home_uids: dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------

    def install(self) -> None:
        """Patch the ``Syscalls`` choke points and start monitoring."""
        _patch_once()
        if self not in _MONITORS:
            _MONITORS.append(self)

    def uninstall(self) -> None:
        """Stop receiving events (patches stay; they become no-ops)."""
        if self in _MONITORS:
            _MONITORS.remove(self)

    def reset(self) -> None:
        """Forget findings and accesses.

        Registrations (roots, allowed prefixes, learned home owners) are
        deliberately kept: hosts outlive per-test resets when built in
        long-lived fixtures, and their mount points stay valid.
        """
        self.findings.clear()
        self.accesses.clear()
        self._seen.clear()

    def check(self) -> list[SecFinding]:
        """All violations recorded since the last :meth:`reset`."""
        return list(self.findings)

    # -- per-host registration -----------------------------------------

    def register_root(self, mount_point: str) -> None:
        """Declare ``mount_point`` a controller tree (homes live below it)."""
        if mount_point not in self._roots:
            self._roots.append(mount_point)
        if mount_point not in self._allowed:
            self._allowed.append(mount_point)

    def allow_prefix(self, prefix: str) -> None:
        """Whitelist an extra writable prefix for app-role processes."""
        if prefix not in self._allowed:
            self._allowed.append(prefix)

    # -- event sinks (called from the patched methods) ------------------

    def _emit(self, kind: str, detail: str, key: tuple[object, ...]) -> None:
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(SecFinding(kind, detail))

    def _home_of(self, path: str) -> tuple[str | None, int | None]:
        for root in self._roots:
            apps = root + "/apps/"
            if path.startswith(apps):
                name = path[len(apps) :].split("/", 1)[0]
                home = apps + name
                return home, self._home_uids.get(home)
        return None, None

    def _on_path(self, sc: Syscalls, op: str, path: str, write: bool) -> None:
        cred = sc.cred
        role = getattr(sc, "role", None)
        ns_name = getattr(sc.ns, "name", "ns?")
        self.accesses.add((cred.uid, ns_name, _prefix(path)))
        if role == "app" and cred.uid == 0:
            self._emit(
                "root-app",
                f"{op}({path}): app-role process executing as uid 0",
                key=("root-app", op, _prefix(path)),
            )
        home, owner = self._home_of(path)
        if home is not None and path != home and owner is not None and owner != cred.uid and not cred.is_root:
            if write:
                self._emit(
                    "ambient-write",
                    f"{op}({path}): uid {cred.uid} writes into {home} (owner uid {owner})",
                    key=("home-write", home, cred.uid),
                )
            else:
                self._emit(
                    "cross-tenant-read",
                    f"{op}({path}): uid {cred.uid} reads {home} (owner uid {owner})",
                    key=("home-read", home, cred.uid),
                )
        elif write and role == "app" and not cred.is_root and not self._is_allowed(path):
            self._emit(
                "ambient-write",
                f"{op}({path}): app uid {cred.uid} writes outside the controller tree and spools",
                key=("stray-write", _prefix(path), cred.uid),
            )

    def _is_allowed(self, path: str) -> bool:
        return any(path == p or path.startswith(p + "/") for p in self._allowed)

    def _on_chown(self, sc: Syscalls, path: str, uid: int) -> None:
        for root in self._roots:
            apps = root + "/apps/"
            if path.startswith(apps) and "/" not in path[len(apps) :]:
                self._home_uids[path] = uid

    def _on_uring(self, sc: Syscalls) -> None:
        if getattr(sc, "role", None) == "app" and sc.cred.uid == 0:
            self._emit(
                "root-app",
                "io_uring_setup: app-role process creating a syscall ring as uid 0",
                key=("root-app", "io_uring_setup"),
            )


_MONITORS: list[SecurityMonitor] = []
_patched = False

#: (method name, is-write).  ``open`` / ``rename`` / ``symlink`` / ``chown``
#: / ``walk`` / ``io_uring_setup`` need bespoke wrappers; ``read_text`` and
#: friends route through ``open`` and ``makedirs`` through ``mkdir``, so
#: tapping the primitives covers the conveniences.
_SIMPLE_TAPS = (
    ("listdir", False),
    ("scandir", False),
    ("readlink", False),
    ("mkdir", True),
    ("rmdir", True),
    ("unlink", True),
    ("truncate", True),
    ("chmod", True),
    ("set_acl", True),
    ("link", True),
)

_WRITE_FLAGS = O_WRONLY | O_RDWR | O_CREAT | O_TRUNC


def _patch_once() -> None:
    """Wrap the ``Syscalls`` choke points (idempotent)."""
    global _patched
    if _patched:
        return
    _patched = True

    def _tap(name: str, write: bool):
        orig = getattr(Syscalls, name)

        def patched(self: Syscalls, path: str, *args, **kwargs):
            out = orig(self, path, *args, **kwargs)
            if _MONITORS:
                ap = self._abspath(path)
                for mon in _MONITORS:
                    mon._on_path(self, name, ap, write)
            return out

        patched.__name__ = name
        patched.__doc__ = orig.__doc__
        return patched

    for name, write in _SIMPLE_TAPS:
        setattr(Syscalls, name, _tap(name, write))

    orig_open = Syscalls.open
    orig_rename = Syscalls.rename
    orig_symlink = Syscalls.symlink
    orig_chown = Syscalls.chown
    orig_walk = Syscalls.walk
    orig_uring = Syscalls.io_uring_setup

    def patched_open(self: Syscalls, path: str, flags: int = 0, mode: int = 0o644) -> int:
        fd = orig_open(self, path, flags, mode)
        if _MONITORS:
            ap = self._abspath(path)
            write = bool(flags & _WRITE_FLAGS)
            for mon in _MONITORS:
                mon._on_path(self, "open", ap, write)
        return fd

    def patched_rename(self: Syscalls, oldpath: str, newpath: str) -> None:
        orig_rename(self, oldpath, newpath)
        if _MONITORS:
            for ap in (self._abspath(oldpath), self._abspath(newpath)):
                for mon in _MONITORS:
                    mon._on_path(self, "rename", ap, True)

    def patched_symlink(self: Syscalls, target: str, linkpath: str) -> None:
        orig_symlink(self, target, linkpath)
        if _MONITORS:
            ap = self._abspath(linkpath)
            for mon in _MONITORS:
                mon._on_path(self, "symlink", ap, True)

    def patched_chown(self: Syscalls, path: str, uid: int, gid: int) -> None:
        orig_chown(self, path, uid, gid)
        if _MONITORS:
            ap = self._abspath(path)
            for mon in _MONITORS:
                mon._on_chown(self, ap, uid)
                mon._on_path(self, "chown", ap, True)

    def patched_walk(self: Syscalls, path: str):
        if _MONITORS:
            ap = self._abspath(path)
            for mon in _MONITORS:
                mon._on_path(self, "walk", ap, False)
        return orig_walk(self, path)

    def patched_uring(self: Syscalls, entries: int = 256):
        ring = orig_uring(self, entries)
        for mon in _MONITORS:
            mon._on_uring(self)
        return ring

    Syscalls.open = patched_open  # type: ignore[method-assign]
    Syscalls.rename = patched_rename  # type: ignore[method-assign]
    Syscalls.symlink = patched_symlink  # type: ignore[method-assign]
    Syscalls.chown = patched_chown  # type: ignore[method-assign]
    Syscalls.walk = patched_walk  # type: ignore[method-assign]
    Syscalls.io_uring_setup = patched_uring  # type: ignore[method-assign]


_env_monitor: SecurityMonitor | None = None


def enabled() -> bool:
    """True when the ``YANCSEC`` environment variable asks for monitoring."""
    return os.environ.get("YANCSEC", "") not in ("", "0")


def install_from_env() -> SecurityMonitor | None:
    """Install (once) the process-wide monitor when ``YANCSEC=1``.

    Outside pytest (whose autouse fixture checks after every test), an
    atexit hook reports any violations still recorded at teardown.
    """
    global _env_monitor
    if not enabled():
        return None
    if _env_monitor is None:
        _env_monitor = SecurityMonitor()
        _env_monitor.install()
        atexit.register(_report_at_exit)
    return _env_monitor


def _report_at_exit() -> None:
    mon = _env_monitor
    if mon is None:
        return
    findings = mon.check()
    if findings:
        print(f"yancsec: {len(findings)} violation(s) at teardown", file=sys.stderr)
        for finding in findings:
            print(f"  {finding}", file=sys.stderr)


def active() -> SecurityMonitor | None:
    """The environment-driven monitor, if one is installed."""
    return _env_monitor


def register_root(mount_point: str) -> None:
    """Declare ``mount_point`` a controller tree on every installed monitor.

    Hosts call this so that *all* observers — the env-driven monitor and
    any explicitly installed one (e.g. the CLI's ``--monitor`` pass) —
    agree on where homes live and where app writes are legitimate.
    """
    for mon in _MONITORS:
        mon.register_root(mount_point)


def reset_all() -> None:
    """Clear state on every installed monitor (test isolation)."""
    for mon in _MONITORS:
        mon.reset()
