"""yanclint orchestration: run rules over files, filter, sort, format."""

from __future__ import annotations

from typing import Iterable

from repro.analysis.core import Finding, ProjectRule, Severity, SourceFile, all_rules
from repro.analysis.loader import load_files


def analyze_sources(
    sources: Iterable[SourceFile],
    *,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
) -> list[Finding]:
    """Run every (selected) rule over parsed sources; returns sorted findings."""
    sources = list(sources)
    findings: list[Finding] = []
    for rule_id, rule in all_rules().items():
        if select is not None and rule_id not in select:
            continue
        if ignore is not None and rule_id in ignore:
            continue
        if isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(sources))
        else:
            for src in sources:
                findings.extend(rule.check(src))
    by_path = {src.path: src for src in sources}
    kept = []
    for finding in findings:
        src = by_path.get(finding.path)
        if src is not None and src.is_suppressed(finding.rule, finding.line):
            continue
        kept.append(finding)
    kept.sort(key=Finding.sort_key)
    return kept


def analyze_paths(
    paths: list[str],
    *,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
) -> list[Finding]:
    """Collect, parse, and analyze ``paths`` (files or directories)."""
    sources, parse_findings = load_files(paths)
    findings = analyze_sources(sources, select=select, ignore=ignore)
    return sorted(parse_findings + findings, key=Finding.sort_key)


def format_findings(findings: list[Finding]) -> str:
    """Human-readable diagnostics plus a one-line summary."""
    lines = [f.format() for f in findings]
    errors = sum(1 for f in findings if f.severity >= Severity.ERROR)
    warnings = sum(1 for f in findings if f.severity == Severity.WARNING)
    if findings:
        lines.append(f"yanclint: {len(findings)} finding(s) ({errors} error(s), {warnings} warning(s))")
    else:
        lines.append("yanclint: clean")
    return "\n".join(lines)


def exit_code(findings: list[Finding]) -> int:
    """Nonzero when any finding is at WARNING severity or above."""
    return 1 if any(f.severity >= Severity.WARNING for f in findings) else 0
