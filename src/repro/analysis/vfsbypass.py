"""Rule ``vfs-bypass``: apps touch the network only through file I/O.

The paper's whole point (§2, §5) is that the yanc tree *is* the controller
API: applications, shells, and admin scripts interact with the network by
reading and writing files through ``Syscalls``/``YancClient``.  Importing
driver or dataplane internals — or mutating ``Inode`` objects directly —
silently skips permission checks, validators, and inotify events (§5.2).

Two scopes, both opt-in by path or ``# yanclint: scope=``:

* ``app`` (``src/repro/apps``, ``src/repro/shell``): strict.  Only the
  value vocabularies (``dataplane.match``/``dataplane.actions``,
  ``netpkt``) and the file interface are allowed.
* ``example`` (``examples/``): scripts legitimately *build* the simulated
  hardware (topologies, links, drivers), but still must not reach around
  the file interface to control it — no inode mutation, no OpenFlow codec
  or schema-node imports.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, Severity, SourceFile, register

#: Module prefixes application-side code must never import.
_APP_FORBIDDEN = (
    "repro.dataplane.switch",
    "repro.dataplane.flowtable",
    "repro.dataplane.network",
    "repro.dataplane.link",
    "repro.dataplane.host",
    "repro.dataplane.topology",
    "repro.openflow",
    "repro.drivers",
    "repro.controlchannel",
    "repro.vfs.inode",
    "repro.vfs.vfs",
    "repro.vfs.memfs",
    "repro.yancfs.schema",
    "repro.libyanc",
)

#: Module prefixes example scripts must never import (control-path bypass).
_EXAMPLE_FORBIDDEN = (
    "repro.openflow.codec",
    "repro.openflow.messages",
    "repro.openflow.of10",
    "repro.openflow.of13",
    "repro.openflow.agent",
    "repro.vfs.inode",
    "repro.yancfs.schema",
)

#: Inode-mutation methods no application-side code may call.
#: ``set_content`` is unique to FileInode and always flagged; ``attach``/
#: ``detach`` are only flagged when the receiver *looks like* a tree node
#: (other objects legitimately have attach()-style APIs, e.g. drivers).
_MUTATION_ATTRS = {"set_content", "attach", "detach"}
_NODE_HINTS = ("inode", "node", "root", "dentry", "parent_dir")


def _receiver_is_nodeish(func: ast.Attribute) -> bool:
    if func.attr == "set_content":
        return True
    receiver = func.value
    name = ""
    if isinstance(receiver, ast.Name):
        name = receiver.id
    elif isinstance(receiver, ast.Attribute):
        name = receiver.attr
    elif isinstance(receiver, ast.Call) and isinstance(receiver.func, ast.Attribute):
        name = receiver.func.attr  # e.g. parent.lookup("x").attach(...)
        if name == "lookup":
            return True
    lowered = name.lower()
    return any(hint in lowered for hint in _NODE_HINTS)


def _forbidden(module: str, prefixes: tuple[str, ...]) -> str | None:
    for prefix in prefixes:
        if module == prefix or module.startswith(prefix + "."):
            return prefix
    return None


class VfsBypassRule(Rule):
    id = "vfs-bypass"
    severity = Severity.ERROR
    description = (
        "apps/, shell/, and examples/ must reach the network through Syscalls/YancClient "
        "file I/O, never via dataplane/openflow internals or direct Inode mutation"
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        if "app" in src.scopes:
            prefixes = _APP_FORBIDDEN
        elif "example" in src.scopes:
            prefixes = _EXAMPLE_FORBIDDEN
        else:
            return
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    hit = _forbidden(alias.name, prefixes)
                    if hit is not None:
                        yield self.finding(src, node, f"import of {alias.name} bypasses the file interface (forbidden: {hit})")
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                hit = _forbidden(node.module, prefixes)
                if hit is not None:
                    names = ", ".join(a.name for a in node.names)
                    yield self.finding(src, node, f"import of {names} from {node.module} bypasses the file interface (forbidden: {hit})")
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _MUTATION_ATTRS and _receiver_is_nodeish(node.func):
                    yield self.finding(
                        src,
                        node,
                        f".{node.func.attr}() mutates an Inode directly, skipping validators and notify events; "
                        "write through Syscalls instead",
                    )


register(VfsBypassRule())
