"""Rule ``determinism``: no wall clock, no unseeded randomness.

DESIGN.md promises a "faithful, deterministic in-process substrate": two
runs with the same seed must produce identical event orders, timestamps,
and counters.  One ``time.time()`` in a daemon or one module-level
``random.random()`` silently breaks that.  The only legitimate time source
is the simulator clock (``sim/clock.py``, scope ``clock``); randomness must
flow through an explicitly seeded ``random.Random(seed)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, Severity, SourceFile, register

#: time-module attributes that read the wall clock (or block on it).
_TIME_ATTRS = {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns", "sleep"}

#: datetime attributes that capture "now".
_DATETIME_ATTRS = {"now", "utcnow", "today"}

#: module-level random functions that draw from the shared, unseeded RNG.
_RANDOM_ATTRS = {
    "random",
    "randint",
    "randrange",
    "randbytes",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "triangular",
    "betavariate",
    "expovariate",
    "gauss",
    "normalvariate",
    "getrandbits",
    "seed",
}


class DeterminismRule(Rule):
    id = "determinism"
    severity = Severity.ERROR
    description = (
        "wall-clock time and unseeded randomness are forbidden outside sim/clock.py; "
        "use the Simulator clock and random.Random(seed)"
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        if "clock" in src.scopes:
            return
        time_aliases: set[str] = set()
        datetime_mod_aliases: set[str] = set()
        datetime_cls_aliases: set[str] = set()
        random_aliases: set[str] = set()
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name
                    if alias.name == "time":
                        time_aliases.add(name)
                    elif alias.name == "datetime":
                        datetime_mod_aliases.add(name)
                    elif alias.name == "random":
                        random_aliases.add(name)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                yield from self._check_from_import(src, node, datetime_cls_aliases)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Attribute):
                continue
            root = _attr_root(node)
            if root in time_aliases and node.attr in _TIME_ATTRS:
                yield self.finding(src, node, f"time.{node.attr} reads the wall clock; use the Simulator clock (sim.now)")
            elif node.attr in _DATETIME_ATTRS and self._is_datetime(node, datetime_mod_aliases, datetime_cls_aliases):
                yield self.finding(src, node, f"datetime.{node.attr}() captures wall-clock time; derive timestamps from sim.now")
            elif root in random_aliases and node.attr in _RANDOM_ATTRS:
                yield self.finding(src, node, f"random.{node.attr} uses the shared unseeded RNG; use random.Random(seed)")
            elif root in random_aliases and node.attr == "SystemRandom":
                yield self.finding(src, node, "random.SystemRandom is nondeterministic by design; use random.Random(seed)")
            elif root in random_aliases and node.attr == "Random":
                call = _enclosing_call(src.tree, node)
                if call is not None and not call.args and not call.keywords:
                    yield self.finding(src, node, "random.Random() without a seed is nondeterministic; pass an explicit seed")

    def _check_from_import(self, src: SourceFile, node: ast.ImportFrom, datetime_cls: set[str]) -> Iterator[Finding]:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _TIME_ATTRS:
                    yield self.finding(src, node, f"from time import {alias.name}: wall clock is forbidden; use the Simulator clock")
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    datetime_cls.add(alias.asname or alias.name)
        elif node.module == "random":
            for alias in node.names:
                if alias.name in _RANDOM_ATTRS or alias.name == "SystemRandom":
                    yield self.finding(src, node, f"from random import {alias.name}: unseeded RNG is forbidden; use random.Random(seed)")

    @staticmethod
    def _is_datetime(node: ast.Attribute, mod_aliases: set[str], cls_aliases: set[str]) -> bool:
        value = node.value
        if isinstance(value, ast.Name) and value.id in cls_aliases:
            return True
        if (
            isinstance(value, ast.Attribute)
            and value.attr in ("datetime", "date")
            and isinstance(value.value, ast.Name)
            and value.value.id in mod_aliases
        ):
            return True
        return False


def _attr_root(node: ast.Attribute) -> str | None:
    if isinstance(node.value, ast.Name):
        return node.value.id
    return None


def _enclosing_call(tree: ast.Module, attr: ast.Attribute) -> ast.Call | None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and node.func is attr:
            return node
    return None


register(DeterminismRule())
