"""The analysis command line: ``python -m repro.analysis [race|yancpath|yancperf|yanccrash|yancsec] [...]``.

Six subcommands share one entry point:

* ``python -m repro.analysis [paths...]`` — **yanclint**, the static
  checker (the historical default, no subcommand word needed);
* ``python -m repro.analysis race workload.py [args...]`` — **yancrace**,
  which runs any Python workload (an example script, a reproducer) under
  the happens-before race detector and reports ordering findings;
* ``python -m repro.analysis yancpath [paths...]`` — **yancpath**, the
  whole-program path & typestate analyzer (schema-derived namespace
  grammar, §3.4 commit protocol, fd lifecycle);
* ``python -m repro.analysis yancperf [paths...]`` — **yancperf**, the
  interprocedural syscall-cost analyzer (amplification findings, the
  ``--report`` cost ranking, and ``--calibrate`` against live meters);
* ``python -m repro.analysis yanccrash [paths...]`` — **yanccrash**, the
  crash-consistency analyzer: statically, durable-effect ordering over
  the commit/publication surfaces; with ``--explore workload.py``, the
  crash-point model checker that replays every crash prefix of the
  workload's durable-op trace and asserts the recovery invariants;
* ``python -m repro.analysis yancsec [paths...]`` — **yancsec**, the
  capability & tenant-isolation analyzer: a taint-to-path lattice plus
  per-function credential summaries judge every syscall site
  (tainted-path, root-ambient, missing-acl, slice-escape,
  unauthenticated-rpc); with ``--monitor workload.py``, the runtime
  reference monitor runs the workload instead and reports isolation
  violations plus the (uid, namespace, prefix) access tuples.

Exit-code discipline (:class:`ExitCode`, shared by every subcommand):

* ``0`` — clean;
* ``1`` — findings (races / diagnostics at warning or above);
* ``2`` — usage error (unknown rule, bad arguments);
* ``3`` — internal error (the analyzer itself, or the workload, crashed).
"""

from __future__ import annotations

import argparse
import enum
import json
import runpy
import sys
from typing import Callable

from repro.analysis import baselines
from repro.analysis.core import all_rules
from repro.analysis.runner import analyze_paths, exit_code, format_findings


class ExitCode(enum.IntEnum):
    """The 0/1/2/3 discipline every analysis subcommand follows."""

    CLEAN = 0
    FINDINGS = 1
    USAGE = 2
    INTERNAL = 3


def usage_error(tool: str, *lines: str) -> int:
    """Report a usage problem on stderr; returns ``ExitCode.USAGE``."""
    for line in lines:
        print(f"{tool}: {line}", file=sys.stderr)
    return ExitCode.USAGE


def report_findings(
    tool: str,
    records: list[dict],
    *,
    as_json: bool,
    baseline: str | None,
    out: str | None,
    key: Callable[[dict], tuple],
    render: Callable[[dict, str], str],
) -> int:
    """Shared emission + verdict: baseline filtering, ``--out``, JSON/text.

    ``records`` are JSON-ready finding dicts; ``key`` makes them
    comparable against a baseline file; ``render`` formats one record for
    the text output (second argument is the ``" (baseline)"`` marker or
    ``""``).  Returns ``FINDINGS`` when any record survives the baseline,
    else ``CLEAN`` — the usage/internal codes come from the caller and
    :func:`main` respectively.
    """
    baseline_keys = baselines.load_baseline(baseline, key)
    fresh = baselines.split_fresh(records, baseline_keys, key)
    baselines.write_records(out, records)
    if as_json:
        print(json.dumps(records, indent=2))
    else:
        for rec in records:
            marker = " (baseline)" if key(rec) in baseline_keys else ""
            print(render(rec, marker))
        suppressed = len(records) - len(fresh)
        tail = f" ({suppressed} in baseline)" if suppressed else ""
        print(f"{tool}: {len(fresh)} finding(s){tail}")
    return ExitCode.FINDINGS if fresh else ExitCode.CLEAN


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="yanclint",
        description="Static invariant checker for the yanc reproduction (determinism, "
        "vfs-bypass, error-discipline, schema coverage, hygiene).",
    )
    parser.add_argument("paths", nargs="*", default=["src", "tests", "examples"], help="files or directories to analyze")
    parser.add_argument("--select", help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--ignore", help="comma-separated rule ids to skip")
    parser.add_argument("--list-rules", action="store_true", help="print the rule registry and exit")
    parser.add_argument("--format", choices=("text", "json"), default="text", help="diagnostic output format")
    parser.add_argument("--json", action="store_true", help="shorthand for --format json")
    return parser


def build_race_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="yancrace",
        description="Run a Python workload under the happens-before race "
        "detector and report unsynchronized accesses, torn commits, and "
        "reads of uncommitted flow state.",
    )
    parser.add_argument("workload", help="Python script to execute (e.g. examples/quickstart.py)")
    parser.add_argument("workload_args", nargs="*", help="arguments passed to the workload")
    parser.add_argument("--json", action="store_true", help="emit findings as JSON")
    parser.add_argument("--baseline", help="JSON findings file; only findings not in it fail the run")
    parser.add_argument("--out", help="write the findings JSON to this file as well")
    return parser


def _finding_key(record: dict) -> tuple:
    return (record.get("kind", ""), record.get("path", ""), tuple(record.get("sites", ())))


def build_yancpath_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="yancpath",
        description="Whole-program path & typestate analysis: every syscall "
        "site's path is checked against a namespace grammar derived from "
        "yancfs/schema.py, plus §3.4 commit-protocol and fd-lifecycle "
        "typestate checks.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "examples"], help="files or directories to analyze"
    )
    parser.add_argument("--json", action="store_true", help="emit findings as JSON")
    parser.add_argument("--baseline", help="JSON findings file; only findings not in it fail the run")
    parser.add_argument("--out", help="write the findings JSON to this file as well")
    return parser


def race_main(argv: list[str]) -> int:
    """yancrace subcommand; returns the process exit code."""
    args = build_race_parser().parse_args(argv)
    from repro.analysis.race import RaceDetector

    detector = RaceDetector().install()
    saved_argv = sys.argv
    sys.argv = [args.workload, *args.workload_args]
    try:
        runpy.run_path(args.workload, run_name="__main__")
    except SystemExit as exc:
        if exc.code not in (None, 0):
            print(f"yancrace: workload exited with {exc.code}", file=sys.stderr)
            return ExitCode.INTERNAL
    finally:
        sys.argv = saved_argv
        detector.uninstall()
    findings = [f.to_json() for f in detector.check()]
    detector.reset()
    return report_findings(
        "yancrace",
        findings,
        as_json=args.json,
        baseline=args.baseline,
        out=args.out,
        key=_finding_key,
        render=lambda rec, marker: f"yancrace [{rec['kind']}]{marker} {rec['detail']}",
    )


def _yancpath_key(record: dict) -> tuple:
    return (record.get("rule", ""), record.get("path", ""), record.get("line", 0))


def yancpath_main(argv: list[str]) -> int:
    """yancpath subcommand; returns the process exit code."""
    args = build_yancpath_parser().parse_args(argv)
    from repro.analysis.yancpath.checker import analyze_yancpath

    findings = analyze_yancpath(list(args.paths))
    records = [f.__dict__ | {"severity": f.severity.label} for f in findings]
    return report_findings(
        "yancpath",
        records,
        as_json=args.json,
        baseline=args.baseline,
        out=args.out,
        key=_yancpath_key,
        render=lambda rec, marker: (
            f"{rec['path']}:{rec['line']}:{rec['col']}: "
            f"{rec['severity']} [{rec['rule']}]{marker} {rec['message']}"
        ),
    )


def build_yancperf_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="yancperf",
        description="Interprocedural syscall-cost analysis: per-function "
        "cost polynomials (loop-depth multipliers, callee rollup) plus "
        "syscall-amplification findings (syscall-in-loop, path-reresolve, "
        "linear-table-scan, chatty-rpc, readdir-then-stat).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "examples"], help="files or directories to analyze"
    )
    parser.add_argument("--json", action="store_true", help="emit findings as JSON")
    parser.add_argument("--baseline", help="JSON findings file; only findings not in it fail the run")
    parser.add_argument("--out", help="write the findings JSON to this file as well")
    parser.add_argument(
        "--report", action="store_true", help="rank functions by estimated syscalls per call"
    )
    parser.add_argument(
        "--top", type=int, default=30, metavar="N", help="rows shown by --report (default 30)"
    )
    parser.add_argument(
        "--calibrate",
        action="store_true",
        help="boot the quickstart topology and check static bounds against live meter counts",
    )
    return parser


def yancperf_main(argv: list[str]) -> int:
    """yancperf subcommand; returns the process exit code."""
    args = build_yancperf_parser().parse_args(argv)
    if args.report and args.calibrate:
        return usage_error("yancperf", "--report and --calibrate are mutually exclusive")
    if args.report:
        from repro.analysis.yancperf.report import cost_report, render_report

        rows = cost_report(list(args.paths))
        if args.json:
            print(json.dumps([row.to_json() for row in rows[: args.top]], indent=2))
        else:
            print(render_report(rows, top=args.top))
        return ExitCode.CLEAN
    if args.calibrate:
        from repro.analysis.yancperf.calibrate import render_calibration, run_calibration

        rows = run_calibration(list(args.paths))
        if args.json:
            print(json.dumps([row.to_json() for row in rows], indent=2))
        else:
            print(render_calibration(rows))
        return ExitCode.CLEAN if all(row.ok for row in rows) else ExitCode.FINDINGS
    from repro.analysis.yancperf.checker import analyze_yancperf

    findings = analyze_yancperf(list(args.paths))
    records = [f.__dict__ | {"severity": f.severity.label} for f in findings]
    return report_findings(
        "yancperf",
        records,
        as_json=args.json,
        baseline=args.baseline,
        out=args.out,
        key=_yancpath_key,  # same (rule, path, line) identity as yancpath
        render=lambda rec, marker: (
            f"{rec['path']}:{rec['line']}:{rec['col']}: "
            f"{rec['severity']} [{rec['rule']}]{marker} {rec['message']}"
        ),
    )


def build_yanccrash_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="yanccrash",
        description="Crash-consistency analysis for the commit/publication "
        "surfaces: a static persistence-effect pass (publish-before-data, "
        "non-atomic-publish, commit-outside-chain, unrecovered-staging) "
        "plus, with --explore, a crash-point model checker that replays "
        "every crash prefix of a workload's durable-op trace.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "examples"], help="files or directories to analyze"
    )
    parser.add_argument("--json", action="store_true", help="emit findings as JSON")
    parser.add_argument("--baseline", help="JSON findings file; only findings not in it fail the run")
    parser.add_argument("--out", help="write the findings JSON to this file as well")
    parser.add_argument(
        "--explore",
        metavar="WORKLOAD",
        help="run this Python workload under the durable-op recorder and "
        "model-check every crash prefix instead of analyzing sources; "
        "positional arguments are passed to the workload",
    )
    return parser


def _yanccrash_explore(args: argparse.Namespace) -> int:
    from repro.analysis.yanccrash.explorer import explore
    from repro.analysis.yanccrash.recorder import CrashRecorder

    recorder = CrashRecorder().install()
    saved_argv = sys.argv
    sys.argv = [args.explore, *args.paths] if args.paths != ["src", "examples"] else [args.explore]
    try:
        runpy.run_path(args.explore, run_name="__main__")
    except SystemExit as exc:
        if exc.code not in (None, 0):
            print(f"yanccrash: workload exited with {exc.code}", file=sys.stderr)
            return ExitCode.INTERNAL
    finally:
        sys.argv = saved_argv
        recorder.uninstall()
    result = explore(recorder.ops)
    recorder.reset()
    records = [v.to_json() for v in result.violations]
    code = report_findings(
        "yanccrash",
        records,
        as_json=args.json,
        baseline=args.baseline,
        out=args.out,
        key=lambda rec: (rec.get("kind", ""), rec.get("path", ""), rec.get("site", "")),
        render=lambda rec, marker: (
            f"yanccrash [{rec['kind']}]{marker} {rec['path']} "
            f"@prefix={rec['prefix']}: {rec['detail']}"
        ),
    )
    if not args.json:
        print(f"yanccrash: {result.summary()}")
    return code


def yanccrash_main(argv: list[str]) -> int:
    """yanccrash subcommand; returns the process exit code."""
    args = build_yanccrash_parser().parse_args(argv)
    if args.explore:
        return _yanccrash_explore(args)
    from repro.analysis.yanccrash.checker import analyze_yanccrash

    findings = analyze_yanccrash(list(args.paths))
    records = [f.__dict__ | {"severity": f.severity.label} for f in findings]
    return report_findings(
        "yanccrash",
        records,
        as_json=args.json,
        baseline=args.baseline,
        out=args.out,
        key=_yancpath_key,  # same (rule, path, line) identity as yancpath
        render=lambda rec, marker: (
            f"{rec['path']}:{rec['line']}:{rec['col']}: "
            f"{rec['severity']} [{rec['rule']}]{marker} {rec['message']}"
        ),
    )


def build_yancsec_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="yancsec",
        description="Capability & tenant-isolation analysis: a taint "
        "lattice over tenant-reachable reads plus per-function credential "
        "summaries judge every syscall site (tainted-path, root-ambient, "
        "missing-acl, slice-escape, unauthenticated-rpc); with --monitor, "
        "a runtime reference monitor on the Syscalls choke points runs a "
        "workload and reports isolation violations and access tuples.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "examples"], help="files or directories to analyze"
    )
    parser.add_argument("--json", action="store_true", help="emit findings as JSON")
    parser.add_argument("--baseline", help="JSON findings file; only findings not in it fail the run")
    parser.add_argument("--out", help="write the findings JSON to this file as well")
    parser.add_argument(
        "--monitor",
        metavar="WORKLOAD",
        help="run this Python workload under the reference monitor instead "
        "of analyzing sources; positional arguments are passed to the "
        "workload",
    )
    return parser


def _yancsec_monitor(args: argparse.Namespace) -> int:
    import os

    from repro.analysis.yancsec.monitor import SecurityMonitor

    monitor = SecurityMonitor()
    monitor.install()
    saved_argv = sys.argv
    saved_env = os.environ.get("YANCSEC")
    os.environ["YANCSEC"] = "1"  # workload code may key optional taps off it
    sys.argv = [args.monitor, *args.paths] if args.paths != ["src", "examples"] else [args.monitor]
    try:
        runpy.run_path(args.monitor, run_name="__main__")
    except SystemExit as exc:
        if exc.code not in (None, 0):
            print(f"yancsec: workload exited with {exc.code}", file=sys.stderr)
            return ExitCode.INTERNAL
    finally:
        sys.argv = saved_argv
        if saved_env is None:
            del os.environ["YANCSEC"]
        else:
            os.environ["YANCSEC"] = saved_env
        monitor.uninstall()
    records = [{"kind": f.kind, "detail": f.detail} for f in monitor.check()]
    accesses = sorted(monitor.accesses)
    monitor.reset()
    code = report_findings(
        "yancsec",
        records,
        as_json=args.json,
        baseline=args.baseline,
        out=args.out,
        key=lambda rec: (rec.get("kind", ""), rec.get("detail", "")),
        render=lambda rec, marker: f"yancsec [{rec['kind']}]{marker} {rec['detail']}",
    )
    if not args.json:
        uids = sorted({uid for uid, _, _ in accesses})
        print(
            f"yancsec: {len(accesses)} access tuple(s) across "
            f"{len(uids)} uid(s) {uids}"
        )
        for uid, ns, prefix in accesses:
            print(f"  uid={uid} ns={ns or '-'} {prefix}")
    return code


def yancsec_main(argv: list[str]) -> int:
    """yancsec subcommand; returns the process exit code."""
    args = build_yancsec_parser().parse_args(argv)
    if args.monitor:
        return _yancsec_monitor(args)
    from repro.analysis.yancsec.checker import analyze_yancsec

    findings = analyze_yancsec(list(args.paths))
    records = [f.__dict__ | {"severity": f.severity.label} for f in findings]
    return report_findings(
        "yancsec",
        records,
        as_json=args.json,
        baseline=args.baseline,
        out=args.out,
        key=_yancpath_key,  # same (rule, path, line) identity as yancpath
        render=lambda rec, marker: (
            f"{rec['path']}:{rec['line']}:{rec['col']}: "
            f"{rec['severity']} [{rec['rule']}]{marker} {rec['message']}"
        ),
    )


def lint_main(argv: list[str] | None) -> int:
    """yanclint subcommand; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, rule in sorted(all_rules().items()):
            print(f"{rule_id:<18} {rule.severity.label:<8} {rule.description}")
        return ExitCode.CLEAN
    select = set(args.select.split(",")) if args.select else None
    ignore = set(args.ignore.split(",")) if args.ignore else None
    known = set(all_rules())
    unknown = ((select or set()) | (ignore or set())) - known
    if unknown:
        return usage_error(
            "yanclint",
            f"unknown rule(s): {', '.join(sorted(unknown))}",
            f"known rules: {', '.join(sorted(known))}",
        )
    findings = analyze_paths(list(args.paths), select=select, ignore=ignore)
    if args.json or args.format == "json":
        print(json.dumps([f.__dict__ | {"severity": f.severity.label} for f in findings], indent=2))
    else:
        print(format_findings(findings))
    return exit_code(findings)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    try:
        if argv and argv[0] == "race":
            return race_main(argv[1:])
        if argv and argv[0] == "yancpath":
            return yancpath_main(argv[1:])
        if argv and argv[0] == "yancperf":
            return yancperf_main(argv[1:])
        if argv and argv[0] == "yanccrash":
            return yanccrash_main(argv[1:])
        if argv and argv[0] == "yancsec":
            return yancsec_main(argv[1:])
        return lint_main(argv)
    except SystemExit:
        raise  # argparse usage errors keep their exit code (2)
    except Exception as exc:  # noqa: BLE001 — CLI boundary: crash means code 3, not a traceback-as-UX
        print(f"repro.analysis: internal error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return ExitCode.INTERNAL


def race_entry() -> int:
    """Console-script entry: ``yancrace workload.py [...]``."""
    return main(["race", *sys.argv[1:]])


def yancpath_entry() -> int:
    """Console-script entry: ``yancpath [paths...]``."""
    return main(["yancpath", *sys.argv[1:]])


def yancperf_entry() -> int:
    """Console-script entry: ``yancperf [paths...]``."""
    return main(["yancperf", *sys.argv[1:]])


def yanccrash_entry() -> int:
    """Console-script entry: ``yanccrash [paths...]``."""
    return main(["yanccrash", *sys.argv[1:]])


def yancsec_entry() -> int:
    """Console-script entry: ``yancsec [paths...]``."""
    return main(["yancsec", *sys.argv[1:]])


if __name__ == "__main__":
    sys.exit(main())
