"""The yanclint command line: ``python -m repro.analysis [paths...]``."""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.core import Severity, all_rules
from repro.analysis.runner import analyze_paths, exit_code, format_findings


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="yanclint",
        description="Static invariant checker for the yanc reproduction (determinism, "
        "vfs-bypass, error-discipline, schema coverage, hygiene).",
    )
    parser.add_argument("paths", nargs="*", default=["src", "tests", "examples"], help="files or directories to analyze")
    parser.add_argument("--select", help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--ignore", help="comma-separated rule ids to skip")
    parser.add_argument("--list-rules", action="store_true", help="print the rule registry and exit")
    parser.add_argument("--format", choices=("text", "json"), default="text", help="diagnostic output format")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, rule in sorted(all_rules().items()):
            print(f"{rule_id:<18} {rule.severity.label:<8} {rule.description}")
        return 0
    select = set(args.select.split(",")) if args.select else None
    ignore = set(args.ignore.split(",")) if args.ignore else None
    known = set(all_rules())
    unknown = ((select or set()) | (ignore or set())) - known
    if unknown:
        print(f"yanclint: unknown rule(s): {', '.join(sorted(unknown))}", file=sys.stderr)
        print(f"yanclint: known rules: {', '.join(sorted(known))}", file=sys.stderr)
        return 2
    findings = analyze_paths(list(args.paths), select=select, ignore=ignore)
    if args.format == "json":
        print(json.dumps([f.__dict__ | {"severity": f.severity.label} for f in findings], indent=2))
    else:
        print(format_findings(findings))
    return exit_code(findings)


if __name__ == "__main__":
    sys.exit(main())
