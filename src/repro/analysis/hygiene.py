"""Generic hygiene rules: mutable default arguments and shadowed builtins.

Not repo-specific, but both bite this codebase's patterns hard: a mutable
default on a daemon constructor aliases state across controller instances,
and shadowing ``open``/``id``/``type`` in file-system code is a readability
hazard when the real builtins appear two lines later.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, Severity, SourceFile, register

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict"}

#: Builtins whose shadowing is flagged.  Deliberately not every builtin:
#: short loop-variable conventions (``min``/``max`` never appear as names
#: here) would drown the signal.
_SHADOWED = {
    "list",
    "dict",
    "set",
    "tuple",
    "type",
    "str",
    "int",
    "float",
    "bytes",
    "bool",
    "object",
    "open",
    "id",
    "input",
    "map",
    "filter",
    "sum",
    "len",
    "range",
    "print",
    "next",
    "iter",
    "hash",
    "vars",
    "format",
    "property",
    "dir",
}


class MutableDefaultRule(Rule):
    id = "mutable-default"
    severity = Severity.WARNING
    description = "mutable default argument values alias state across calls; default to None"

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                args = node.args
                for default in list(args.defaults) + [d for d in args.kw_defaults if d is not None]:
                    if self._is_mutable(default):
                        name = getattr(node, "name", "<lambda>")
                        yield self.finding(src, default, f"mutable default argument in {name}(); use None and fill in inside")

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _MUTABLE_CALLS:
                return True
            if isinstance(func, ast.Attribute) and func.attr in _MUTABLE_CALLS:
                return True
        return False


class ShadowBuiltinRule(Rule):
    id = "shadow-builtin"
    severity = Severity.WARNING
    description = "binding a name that shadows a Python builtin invites confusing bugs"

    def check(self, src: SourceFile) -> Iterator[Finding]:
        # Class attributes and methods named `open`/`id`/`format` are
        # idiomatic (Syscalls.open *is* open(2)); only bare-name bindings
        # that actually occlude the builtin are flagged.
        class_body: set[int] = set()
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef):
                class_body.update(id(stmt) for stmt in node.body)
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if node.name in _SHADOWED and id(node) not in class_body:
                    yield self.finding(src, node, f"definition of {node.name!r} shadows the builtin")
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_args(src, node)
            elif isinstance(node, ast.Assign):
                if id(node) in class_body:
                    continue
                for target in node.targets:
                    yield from self._check_target(src, target)
            elif isinstance(node, (ast.For, ast.comprehension)):
                target = node.target
                yield from self._check_target(src, target)

    def _check_args(self, src: SourceFile, node: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[Finding]:
        args = node.args
        every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        if args.vararg:
            every.append(args.vararg)
        if args.kwarg:
            every.append(args.kwarg)
        for arg in every:
            if arg.arg in _SHADOWED:
                yield self.finding(src, arg, f"argument {arg.arg!r} shadows the builtin")

    def _check_target(self, src: SourceFile, target: ast.expr) -> Iterator[Finding]:
        if isinstance(target, ast.Name) and target.id in _SHADOWED:
            yield self.finding(src, target, f"assignment to {target.id!r} shadows the builtin")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from self._check_target(src, elt)


class PrivatePokeRule(Rule):
    id = "private-poke"
    severity = Severity.WARNING
    description = "writing a private attribute of another module's class bypasses its invariants"

    def check(self, src: SourceFile) -> Iterator[Finding]:
        # `attr._last_valid = data` on an object constructed from an
        # imported class couples the caller to the class's internals and
        # skips whatever bookkeeping its mutators maintain (the bug class
        # behind LibYanc poking AttributeFile's validation cache).  Only
        # locals whose construction from an imported class is visible in
        # the same scope are flagged — `self._x` and same-module pokes
        # stay legal.
        imported: dict[str, str] = {}
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    imported[alias.asname or alias.name] = node.module
        if not imported:
            return
        scopes: list = [src.tree]
        scopes.extend(
            n for n in ast.walk(src.tree) if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            yield from self._check_scope(src, scope, imported)

    def _check_scope(self, src: SourceFile, scope, imported: dict[str, str]) -> Iterator[Finding]:
        typed: dict[str, str] = {}
        for stmt in self._statements(scope.body):
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                targets = [stmt.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in typed
                    and target.attr.startswith("_")
                    and not target.attr.startswith("__")
                ):
                    cls = typed[target.value.id]
                    yield self.finding(
                        src,
                        target,
                        f"direct write to {cls}.{target.attr} from outside {imported[cls]}; add a public mutator",
                    )
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                name = stmt.targets[0].id
                value = stmt.value
                if (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in imported
                    and value.func.id[:1].isupper()  # constructor, not a factory function
                ):
                    typed[name] = value.func.id
                else:
                    typed.pop(name, None)  # rebound to something else: stop tracking

    @classmethod
    def _statements(cls, body: list) -> Iterator[ast.stmt]:
        """Statements of one scope in source order, nested defs excluded."""
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            yield stmt
            for field_name in ("body", "orelse", "finalbody"):
                yield from cls._statements(getattr(stmt, field_name, None) or [])
            for handler in getattr(stmt, "handlers", None) or []:
                yield from cls._statements(handler.body)


register(MutableDefaultRule())
register(ShadowBuiltinRule())
register(PrivatePokeRule())
