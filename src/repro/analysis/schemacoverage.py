"""Rule ``schema-coverage``: every yancfs attribute file has a validator.

The yanc tree "never holds an unparseable configuration" (yancfs/validate)
— but only for files that actually *carry* a validator.  This cross-module
rule walks every :class:`AttributeFile` in the derived namespace model
(:class:`repro.analysis.yancpath.grammar.NamespaceModel`, whose probe tree
instantiates one object of every kind: switch, port, flow, event message,
host, view, middlebox state entry) and demands each one either has a
validator or is explicitly registered as free-form in
``validate.FREE_FORM_ATTRIBUTES``.  It also checks the flow vocabulary:
every ``match.<field>`` from ``MATCH_FIELD_NAMES`` and every core flow
attribute must resolve through ``flow_file_validator``.

Findings anchor to the declaration site in ``yancfs/schema.py``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.analysis.core import Finding, ProjectRule, Severity, SourceFile, register

#: Flow attribute files the commit protocol depends on (§3.4, figure 3).
_REQUIRED_FLOW_ATTRS = ("priority", "timeout", "idle_timeout", "hard_timeout", "cookie", "version")


class SchemaCoverageRule(ProjectRule):
    id = "schema-coverage"
    severity = Severity.ERROR
    description = (
        "every attribute file declared by yancfs/schema.py must have a validator in "
        "yancfs/validate.py (or be registered in FREE_FORM_ATTRIBUTES)"
    )

    def check_project(self, files: Iterable[SourceFile]) -> Iterator[Finding]:
        try:
            from repro.analysis.yancpath.grammar import NamespaceModel
            from repro.yancfs import validate
            from repro.yancfs.schema import AttributeFile
        except ImportError as exc:
            yield Finding("repro/yancfs/schema.py", 1, 1, self.id, self.severity, f"cannot import yancfs to check coverage: {exc}")
            return

        free_form = getattr(validate, "FREE_FORM_ATTRIBUTES", frozenset())
        schema_path, schema_lines = _schema_source()
        model = NamespaceModel.build()

        seen: set[str] = set()
        for name, node in model.iter_files():
            if not isinstance(node, AttributeFile) or node.validator is not None:
                continue
            if name in free_form:
                continue
            if name in seen:
                continue
            seen.add(name)
            yield Finding(
                path=schema_path,
                line=_line_of(schema_lines, name),
                col=1,
                rule=self.id,
                severity=self.severity,
                message=(
                    f"attribute file {name!r} is created without a validator and is not in "
                    "validate.FREE_FORM_ATTRIBUTES; writes to it skip close-time validation"
                ),
            )

        yield from self._check_flow_vocabulary(validate, schema_path, schema_lines)

    def _check_flow_vocabulary(self, validate, schema_path: str, schema_lines: list[str]) -> Iterator[Finding]:
        from repro.dataplane.match import MATCH_FIELD_NAMES
        from repro.vfs.errors import InvalidArgument

        for attr in _REQUIRED_FLOW_ATTRS:
            if attr not in validate.FLOW_ATTRIBUTE_VALIDATORS:
                yield Finding(
                    path=schema_path,
                    line=_line_of(schema_lines, attr),
                    col=1,
                    rule=self.id,
                    severity=self.severity,
                    message=f"flow attribute {attr!r} has no entry in FLOW_ATTRIBUTE_VALIDATORS",
                )
        for field in sorted(MATCH_FIELD_NAMES):
            try:
                checker = validate.flow_file_validator(f"match.{field}")
            except InvalidArgument:
                checker = None
            if checker is None:
                yield Finding(
                    path=schema_path,
                    line=_line_of(schema_lines, "match."),
                    col=1,
                    rule=self.id,
                    severity=self.severity,
                    message=f"match field {field!r} has no close-time validator via flow_file_validator",
                )


def _schema_source() -> tuple[str, list[str]]:
    import os

    from repro.yancfs import schema

    path = getattr(schema, "__file__", "repro/yancfs/schema.py") or "repro/yancfs/schema.py"
    rel = os.path.relpath(path)
    if not rel.startswith(".."):
        path = rel
    try:
        with open(path, encoding="utf-8") as fh:
            return path, fh.read().splitlines()
    except OSError:
        return path, []


def _line_of(lines: list[str], needle: str) -> int:
    quoted = (f'"{needle}"', f"'{needle}'")
    for lineno, line in enumerate(lines, start=1):
        if any(q in line for q in quoted):
            return lineno
    return 1


register(SchemaCoverageRule())
