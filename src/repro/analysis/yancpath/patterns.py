"""The abstract string lattice yancpath tracks paths with.

A path expression is abstracted into a **token string**: a sequence of
``SEP`` (a ``/``), ``text`` (a known literal chunk), and ``hole`` (an
unknown chunk — a parameter, an attribute we cannot resolve, the result
of a call without a summary).  Token strings compose under concatenation
exactly like the concrete strings they stand for, which is what makes
f-strings, ``+``, ``os.path.join`` and helper-function summaries all
fold into one representation.

For matching against the namespace grammar a token string is *finalized*
into a :class:`PathPattern` — a sequence of segment atoms where each
atom is either a :class:`Seg` (literal parts interleaved with in-segment
wildcards) or :data:`STAR` (an unknown run of zero or more whole
segments).  The rules:

* a hole glued to literal text (``f"pi_{seq}"``) stays *inside* its
  segment — it is assumed not to contain a ``/``;
* a hole standing alone at the *head* of the pattern
  (``f"{self.root}/switches"``) becomes :data:`STAR` — it is a mount
  prefix and nothing bounds how many segments it spans;
* a hole standing alone between separators deeper in the pattern
  (``f"{base}/flows/{name}"``'s ``name``) is a **single** unknown
  segment — path holes in that position are object names, and keeping
  them single-segment is what lets the grammar reject a neighbouring
  typo instead of sliding the tail into some other subtree.  (A helper
  summary whose hole is *substituted* with a multi-segment argument
  regains the segments before finalization, so composition stays
  exact.)

The lattice is deliberately one-sided: widening only ever *loosens* a
pattern (toward STAR), so every check downstream errs toward silence,
never toward a false alarm.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Optional

# -- tokens ---------------------------------------------------------------------------

SEP = ("sep",)


def text_token(value: str) -> tuple:
    return ("text", value)


def hole_token(name: str | None = None) -> tuple:
    return ("hole", name)


#: The completely-unknown string: a single anonymous hole.
UNKNOWN: tuple = (hole_token(),)

_FORMAT_HOLE = re.compile(r"\{[^{}]*\}|%[sdrfxo]")


def tokens_from_literal(value: str) -> tuple:
    """Tokenize a literal string, splitting on ``/``."""
    out: list[tuple] = []
    first = True
    for chunk in value.split("/"):
        if not first:
            out.append(SEP)
        first = False
        if chunk:
            out.append(text_token(chunk))
    return tuple(out)


def tokens_from_template(value: str) -> tuple:
    """Tokenize a ``str.format``/``%`` template: placeholders become holes."""
    out: list[tuple] = []
    pos = 0
    for match in _FORMAT_HOLE.finditer(value):
        out += tokens_from_literal(value[pos : match.start()])
        out.append(hole_token())
        pos = match.end()
    out += tokens_from_literal(value[pos:])
    return tuple(out)


def concat(*parts: Iterable[tuple]) -> tuple:
    """Concatenate token strings (plain string concatenation semantics)."""
    out: list[tuple] = []
    for part in parts:
        out.extend(part)
    return tuple(out)


def join(parts: list[tuple]) -> tuple:
    """``os.path.join`` semantics: a later absolute part restarts the path."""
    out: tuple = ()
    for part in parts:
        if part[:1] == (SEP,):
            out = part
        elif out:
            out = concat(out, (SEP,), part)
        else:
            out = part
    return out


def substitute(tokens: tuple, bindings: dict[str, tuple]) -> tuple:
    """Replace named holes with argument token strings (summary application)."""
    out: list[tuple] = []
    for token in tokens:
        if token[0] == "hole" and token[1] is not None:
            out.extend(bindings.get(token[1], (hole_token(),)))
        else:
            out.append(token)
    return tuple(out)


def merge(a: tuple | None, b: tuple | None) -> tuple:
    """Join two abstract strings at a control-flow merge point."""
    if a is None:
        return b if b is not None else UNKNOWN
    if b is None or a == b:
        return a
    return UNKNOWN


# -- finalized patterns ----------------------------------------------------------------

#: In-segment wildcard: an unknown chunk assumed not to contain ``/``.
WILD = "\x00wild"

#: Whole-segment wildcard atom: zero or more unknown segments.
STAR = "\x00star"


@dataclass(frozen=True)
class Seg:
    """One path segment: literal parts interleaved with :data:`WILD`."""

    parts: tuple[str, ...]

    @property
    def literal(self) -> str | None:
        """The exact name when the segment is fully literal, else None."""
        if any(p is WILD for p in self.parts):
            return None
        return "".join(self.parts)

    def matches_name(self, name: str) -> bool:
        """Glob-match ``name`` against the segment (WILD = ``*``)."""
        regex = "".join(".*" if p is WILD else re.escape(p) for p in self.parts)
        return re.fullmatch(regex, name) is not None

    def render(self) -> str:
        return "".join("*" if p is WILD else p for p in self.parts)


@dataclass(frozen=True)
class PathPattern:
    """A finalized path abstraction ready for grammar matching."""

    anchored: bool
    atoms: tuple  # of Seg | STAR

    def render(self) -> str:
        body = "/".join("**" if a is STAR else a.render() for a in self.atoms)
        return ("/" if self.anchored else "") + body

    @property
    def literal_segments(self) -> tuple[str, ...]:
        return tuple(a.literal for a in self.atoms if a is not STAR and a.literal is not None)


def finalize(tokens: tuple) -> Optional[PathPattern]:
    """Collapse a token string into a :class:`PathPattern`.

    Returns None when the string cannot be a well-formed path for
    matching purposes (contains ``..`` — the physical walk semantics are
    out of scope for the lattice, so such paths are simply not judged).
    """
    anchored = tokens[:1] == (SEP,)
    atoms: list = []
    run: list = []  # parts of the segment being assembled

    def flush() -> None:
        if not run:
            return
        if len(run) == 1 and run[0] is WILD and not atoms and not anchored:
            # A lone hole at the head is a mount prefix: any depth.
            atoms.append(STAR)
        else:
            atoms.append(Seg(tuple(run)))
        run.clear()

    for token in tokens:
        if token == SEP:
            flush()
        elif token[0] == "text":
            run.append(token[1])
        else:  # hole
            if run and run[-1] is WILD:
                continue
            run.append(WILD)
    flush()

    cleaned: list = []
    for atom in atoms:
        if atom is not STAR:
            lit = atom.literal
            if lit == ".":
                continue
            if lit == "..":
                return None
        if atom is STAR and cleaned and cleaned[-1] is STAR:
            continue
        cleaned.append(atom)
    return PathPattern(anchored=anchored, atoms=tuple(cleaned))
