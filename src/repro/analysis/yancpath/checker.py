"""yancpath orchestration: interpret every module, judge every site.

The checker wires the three layers together: it derives a
:class:`~repro.analysis.yancpath.grammar.NamespaceModel` from the live
schema, runs the :class:`~repro.analysis.yancpath.interp.FuncInterp`
abstract interpreter over every function and module body in the analyzed
tree, and turns the recorded syscall sites and typestate results into
ordinary :class:`repro.analysis.core.Finding` records:

* ``unknown-path`` (error) — the site's path pattern is *about* the yanc
  tree (anchored at the mount, or naming a structural directory) but no
  interpretation of it can exist in the derived namespace;
* ``bad-write-format`` (error) — a compile-time-constant payload that
  every possible target file's validator rejects;
* ``event-buffer-misuse`` (error, app/example scope) — writing inside a
  §3.5 event buffer (driver-filled, app-read) or reading the
  ``packet_out`` spool (app-filled, driver-read);
* ``flow-no-commit`` (warning) — a flow spec write with no ``version``
  increment on some normal path to the function exit (§3.4);
* ``fd-leak-on-exception`` (warning) — an ``open`` whose fd can escape
  down an exception edge without reaching ``close``.

Suppressions are the ordinary ``# yanclint: disable=<kind>`` comments.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.core import Finding, Severity, SourceFile
from repro.analysis.yancpath import patterns as P
from repro.analysis.yancpath.grammar import NamespaceModel
from repro.analysis.yancpath.interp import FuncInterp, ProjectIndex

KINDS = (
    "unknown-path",
    "bad-write-format",
    "event-buffer-misuse",
    "flow-no-commit",
    "fd-leak-on-exception",
)

_SEVERITY = {
    "unknown-path": Severity.ERROR,
    "bad-write-format": Severity.ERROR,
    "event-buffer-misuse": Severity.ERROR,
    "flow-no-commit": Severity.WARNING,
    "fd-leak-on-exception": Severity.WARNING,
}

_WRITEISH = frozenset({"write_text", "write_bytes", "mkdir", "makedirs"})
_READISH = frozenset({"read_text", "read_bytes", "listdir", "open", "walk"})


def make_judge(model: NamespaceModel):
    """The flow-file role oracle the interpreter's §3.4 machine uses.

    A write is judged by where its finalized pattern lands: the file
    directly under ``flows/<name>/`` is a *commit* when it is ``version``
    and a *staging* write when it is a spec file (a registered flow
    attribute, a ``match.*``/``action.*`` field, or a name too dynamic to
    tell — the flow pusher writes ``f"{path}/{filename}"``).  Driver ack
    files (``state.*``) and anything deeper (``counters/``) are neither.
    """
    spec_names = model.flow_spec_names()
    spec_prefixes = model.flow_spec_prefixes()

    def judge(tokens: tuple) -> str | None:
        pattern = P.finalize(tokens)
        if pattern is None or len(pattern.atoms) < 3:
            return None
        flows = pattern.atoms[-3]
        if flows is P.STAR or flows.literal != "flows":
            return None
        last = pattern.atoms[-1]
        if last is P.STAR:
            return None
        literal = last.literal
        if literal == "version":
            return "commit"
        if literal is None:
            return "stage"
        if literal.startswith("state."):
            return None
        if literal in spec_names or literal.startswith(spec_prefixes):
            return "stage"
        return None

    return judge


def analyze_yancpath(
    paths: list[str], *, model: NamespaceModel | None = None
) -> list[Finding]:
    """Run the whole-program analysis over files/directories ``paths``."""
    from repro.analysis.loader import load_files

    sources, findings = load_files(paths)
    findings.extend(analyze_sources(sources, model=model))
    findings.sort(key=Finding.sort_key)
    return findings


def analyze_sources(
    sources: Iterable[SourceFile], *, model: NamespaceModel | None = None
) -> list[Finding]:
    """Analyze already-parsed sources (the CLI adds loader findings)."""
    sources = list(sources)
    if model is None:
        model = NamespaceModel.build()
    index = ProjectIndex(sources, make_judge(model))
    out: list[Finding] = []
    for module in index.modules:
        src: SourceFile = module.src
        emitted: set[tuple[int, int, str]] = set()

        def emit(kind: str, node, message: str) -> None:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0) + 1
            key = (line, col, kind)
            if key in emitted or src.is_suppressed(kind, line):
                return
            emitted.add(key)
            out.append(
                Finding(
                    path=src.path,
                    line=line,
                    col=col,
                    rule=kind,
                    severity=_SEVERITY[kind],
                    message=message,
                )
            )

        interps = [FuncInterp(index, None, module=module)]
        interps += [FuncInterp(index, decl) for decl in module.functions]
        for interp in interps:
            interp.run()
            for kind, node in interp.local_findings:
                if kind == "flow-no-commit":
                    emit(
                        kind,
                        node,
                        "flow spec write reaches a function exit with no "
                        "version increment on that path (§3.4 commit protocol)",
                    )
                else:
                    emit(
                        kind,
                        node,
                        "fd from open() can leak on an exception path; "
                        "close it in a finally block",
                    )
            for site in interp.sites:
                _judge_site(site, src, model, emit)
    return out


def _judge_site(site, src: SourceFile, model: NamespaceModel, emit) -> None:
    for position, tokens in enumerate(site.paths):
        pattern = P.finalize(tokens)
        if pattern is None or not pattern.atoms:
            continue
        result = model.match(pattern)
        if not result.applicable:
            continue
        if not result.matched:
            emit(
                "unknown-path",
                site.node,
                f"{site.method}() path {pattern.render()!r} cannot exist "
                "in the yanc namespace (derived from yancfs/schema.py)",
            )
            continue
        if not result.exhaustive:
            continue  # resolution cap hit: too ambiguous to judge further
        resolutions = result.resolutions
        if (
            site.method == "write_text"
            and position == 0
            and isinstance(site.content, str)
            and resolutions
            and all(
                not r.is_dir and r.validator_known and r.validator is not None
                for r in resolutions
            )
        ):
            rejection = _rejected_by_all(site.content, resolutions)
            if rejection is not None:
                emit(
                    "bad-write-format",
                    site.node,
                    f"payload {site.content!r} is rejected by the target "
                    f"file's validator ({rejection}); written as "
                    f"{pattern.render()!r}",
                )
        scoped = "app" in src.scopes or "example" in src.scopes
        if scoped and resolutions:
            if site.method in _WRITEISH and all(r.in_event_buffer for r in resolutions):
                emit(
                    "event-buffer-misuse",
                    site.node,
                    f"{site.method}() inside a §3.5 event buffer: buffers "
                    "are driver-filled and app-read; apps must not write "
                    "event messages",
                )
            elif site.method in _READISH and all(r.in_packet_out for r in resolutions):
                emit(
                    "event-buffer-misuse",
                    site.node,
                    f"{site.method}() from the packet_out spool: the spool "
                    "is app-written and driver-consumed; apps must not "
                    "read it back",
                )


def _rejected_by_all(content: str, resolutions) -> str | None:
    """The rejection message when every candidate validator refuses."""
    message = None
    for resolution in resolutions:
        try:
            resolution.validator(content)
            return None
        except Exception as exc:  # noqa: BLE001 — validators raise typed errors
            message = str(exc) or type(exc).__name__
    return message


__all__ = ["KINDS", "analyze_sources", "analyze_yancpath", "make_judge"]
