"""The yancfs namespace model, derived from the live schema.

Nothing in here hand-copies the tree layout.  The model is built by
*instantiating* ``yancfs/schema.py`` — mounting a throwaway in-memory
yanc file system, mkdir-ing one probe object of every kind (switch,
port, flow, event buffer + message, host, view, middlebox, state entry)
so every semantic-mkdir ``populate()`` runs — and then answering
questions by asking the real inode classes:

* **literal children** come from the probe tree itself (``populate()``
  attached them);
* **wildcard children** (a new switch name, a new flow name) are probed
  through the class's own ``may_create``/``child_factory`` hooks, so
  name-conditional rules (``flow_file_validator`` rejecting unknown flow
  files, the root accepting only ``middleboxes``) are enforced by the
  same code that enforces them at runtime;
* **content validators** are read off the :class:`AttributeFile` nodes
  the factories build.

One strictness delta over the runtime, documented in DESIGN §5e: a
*structural* object directory (one whose class defines ``populate()``
without overriding ``child_factory``) is treated as **closed** — the
runtime would happily ``mkdir /net/switches/s1/flow`` as a plain
directory, but no correct program invents names under a populated
object, and that typo is exactly the bug class yancpath exists to catch.

Because the model is rebuilt from the imported modules on every
:meth:`NamespaceModel.build`, mutating a schema constant (say
``SWITCH_ATTRIBUTE_FILES``) changes the grammar with no analyzer change
— a property the test suite pins down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.analysis.yancpath.patterns import STAR, PathPattern, Seg

_PROBE = "zz_yancpath_probe"
_MATCH_CAP = 32
_STEP_CAP = 4000


@dataclass(frozen=True)
class Resolution:
    """One way a pattern can land in the tree."""

    is_dir: bool
    validator: Callable[[str], None] | None
    validator_known: bool
    in_event_buffer: bool
    in_packet_out: bool


@dataclass
class MatchResult:
    """Outcome of matching one pattern against the namespace."""

    applicable: bool
    resolutions: list[Resolution] = field(default_factory=list)
    exhaustive: bool = True  # False when the resolution cap was hit

    @property
    def matched(self) -> bool:
        return bool(self.resolutions)


class NamespaceModel:
    """The derived path grammar for one yanc tree shape."""

    def __init__(self) -> None:
        from repro.vfs.errors import FsError
        from repro.vfs.inode import DirInode
        from repro.vfs.stat import FileType
        from repro.vfs.syscalls import Syscalls
        from repro.vfs.vfs import VirtualFileSystem
        from repro.yancfs import schema, validate
        from repro.yancfs.client import mount_yancfs

        self._DirInode = DirInode
        self._FileType = FileType
        self._FsError = FsError
        self._schema = schema
        self._validate = validate

        sc = Syscalls(VirtualFileSystem())
        mount_yancfs(sc)
        for path in (
            "/net/switches/s1",
            "/net/switches/s1/ports/port_1",
            "/net/switches/s1/flows/f1",
            "/net/switches/s1/events/app_probe",
            "/net/switches/s1/events/app_probe/m_probe",
            "/net/hosts/h1",
            "/net/views/v1",
            "/net/middleboxes",
            "/net/middleboxes/mb1",
            "/net/middleboxes/mb1/state/e1",
            "/net/apps",
            "/net/apps/app_probe",
        ):
            sc.mkdir(path)
        self._cred = sc.cred
        self.root = sc.vfs.resolve(sc.ns, sc.cred, "/net")
        self.root_names: tuple[str, ...] = ("net",)

        # First-seen representative per inode class (BFS keeps the
        # master-tree instances ahead of the empty view-subtree copies).
        # The structural vocabulary is the set of directory names that
        # populate() attaches — probe-object names (s1, f1, ...) live
        # under container dirs whose classes define no populate() and
        # are excluded, so only schema-fixed names count as evidence
        # that an un-anchored pattern talks about the yanc tree.
        self._reps: dict[type, object] = {}
        self.dir_vocab: set[str] = set()
        queue = [self.root]
        while queue:
            node = queue.pop(0)
            self._reps.setdefault(type(node), node)
            populated = any("populate" in k.__dict__ for k in type(node).__mro__)
            for name, child in node.children():
                if isinstance(child, DirInode):
                    if populated:
                        self.dir_vocab.add(name)
                    queue.append(child)

    @classmethod
    def build(cls) -> "NamespaceModel":
        """Derive a fresh model from the schema as currently imported."""
        return cls()

    # -- derived vocabularies ---------------------------------------------------------

    def flow_spec_names(self) -> set[str]:
        """Flow files that stage spec state (everything but the commit file)."""
        return set(self._validate.FLOW_ATTRIBUTE_VALIDATORS) - {"version"}

    def flow_spec_prefixes(self) -> tuple[str, ...]:
        return ("match.", "action.")

    def iter_files(self) -> Iterator[tuple[str, object]]:
        """Every (name, inode) regular file in the probe tree."""
        stack = [self.root]
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            for name, child in node.children():
                if isinstance(child, self._DirInode):
                    stack.append(child)
                else:
                    yield name, child

    def iter_file_nodes(self) -> Iterator[tuple[str, object]]:
        """Every probe-tree regular file as ``(absolute path, inode)``.

        The live schema nodes carry their ACLs (``inode.acl``), modes and
        uids, so this is how yancsec reads access control straight off the
        schema.  Nested ``views`` subtrees mirror the master classes and
        are skipped so each schema position appears once.
        """
        stack: list[tuple[str, object]] = [("/net", self.root)]
        while stack:
            path, node = stack.pop()
            for name, child in node.children():
                if isinstance(child, self._DirInode):
                    if name != "views":
                        stack.append((f"{path}/{name}", child))
                else:
                    yield f"{path}/{name}", child

    def match_file_nodes(self, pattern: PathPattern) -> list[tuple[str, object]]:
        """Probe-tree files a pattern can land on, as ``(path, inode)``.

        Unlike :meth:`match` this never probes ``child_factory`` — only
        files ``populate()`` actually attached count, so the answer is the
        set of *schema-stamped* nodes (the ones whose ACLs are schema
        policy rather than per-creation accidents).
        """
        atoms = pattern.atoms
        if pattern.anchored:
            if not atoms:
                return []
            head = atoms[0]
            if head is not STAR and head.literal is not None:
                if head.literal not in self.root_names:
                    return []
                return self._file_search(atoms[1:])
            atoms = atoms if head is STAR else (STAR,) + atoms[1:]
        if not any(lit in self.dir_vocab for lit in pattern.literal_segments):
            return []
        if atoms[:1] != (STAR,):
            atoms = (STAR,) + atoms
        return self._file_search(atoms)

    def _file_search(self, atoms: tuple) -> list[tuple[str, object]]:
        out: list[tuple[str, object]] = []
        self._file_match(self.root, "/net", atoms, 0, out, set(), [_STEP_CAP])
        return out

    def _file_match(self, node, path, atoms, i, out, memo, budget) -> None:
        if budget[0] <= 0 or len(out) >= _MATCH_CAP:
            return
        budget[0] -= 1
        if i == len(atoms):
            return  # the pattern ended on a directory, not a file
        atom = atoms[i]
        last = i == len(atoms) - 1
        if atom is STAR:
            key = (id(node), i)
            if key in memo:
                return
            memo.add(key)
            self._file_match(node, path, atoms, i + 1, out, memo, budget)
            for name, child in node.children():
                if isinstance(child, self._DirInode):
                    self._file_match(child, f"{path}/{name}", atoms, i, out, memo, budget)
            return
        for name, child in node.children():
            if atom.literal is not None:
                if name != atom.literal:
                    continue
            elif not atom.matches_name(name):
                continue
            if isinstance(child, self._DirInode):
                if not last:
                    self._file_match(child, f"{path}/{name}", atoms, i + 1, out, memo, budget)
            elif last:
                out.append((f"{path}/{name}", child))

    # -- matching ---------------------------------------------------------------------

    def match(self, pattern: PathPattern) -> MatchResult:
        """Match a finalized pattern against the namespace.

        ``applicable`` is False when the pattern cannot be judged: an
        absolute path outside the yanc mount, or a relative/unknown-root
        pattern that names no structural directory of the tree (those
        are ordinary files, not yanc paths).
        """
        atoms = pattern.atoms
        if pattern.anchored:
            if not atoms:
                return MatchResult(applicable=False)
            head = atoms[0]
            if head is not STAR and head.literal is not None:
                if head.literal not in self.root_names:
                    return MatchResult(applicable=False)
                return self._search(atoms[1:])
            # `/…{hole}…/switches` — unknown mount segment: fall through
            # to suffix matching below.
            atoms = atoms if head is STAR else (STAR,) + atoms[1:]
        if not any(lit in self.dir_vocab for lit in pattern.literal_segments):
            return MatchResult(applicable=False)
        if atoms[:1] != (STAR,):
            atoms = (STAR,) + atoms
        return self._search(atoms)

    def _search(self, atoms: tuple) -> MatchResult:
        out: list[Resolution] = []
        budget = [_STEP_CAP]
        self._match(self.root, atoms, 0, False, False, out, set(), budget)
        return MatchResult(applicable=True, resolutions=out, exhaustive=budget[0] > 0 and len(out) < _MATCH_CAP)

    def _match(self, node, atoms, i, in_eb, in_po, out, memo, budget) -> None:
        if len(out) >= _MATCH_CAP or budget[0] <= 0:
            return
        budget[0] -= 1
        if i == len(atoms):
            out.append(Resolution(True, None, True, in_eb, in_po))
            return
        atom = atoms[i]
        last = i == len(atoms) - 1
        if atom is STAR:
            key = (id(node), i, in_eb, in_po)
            if key in memo:
                return
            memo.add(key)
            self._match(node, atoms, i + 1, in_eb, in_po, out, memo, budget)
            # STAR stands for an unknown *prefix* (a mount root, a view
            # root).  Expanding it along literal children only — the
            # probe tree holds one instance of every structural position
            # — keeps it from sliding into open subtrees (event-message
            # dirs, host attribute dirs) and matching nonsense there.
            c_eb = in_eb or self._is_role(node, "EventBufferDir")
            c_po = in_po or self._is_role(node, "PacketOutDir")
            for _name, child in node.children():
                if isinstance(child, self._DirInode):
                    self._match(child, atoms, i, c_eb, c_po, out, memo, budget)
            return

        c_eb = in_eb or self._is_role(node, "EventBufferDir")
        c_po = in_po or self._is_role(node, "PacketOutDir")
        lit = atom.literal
        matched_literal_child = False
        for name, child in node.children():
            if lit is not None:
                if name != lit:
                    continue
                matched_literal_child = True
            elif not atom.matches_name(name):
                continue
            if isinstance(child, self._DirInode):
                if last:
                    out.append(Resolution(True, None, True, c_eb, c_po))
                else:
                    self._match(child, atoms, i + 1, c_eb, c_po, out, memo, budget)
            elif last:
                validator = getattr(child, "validator", None)
                out.append(Resolution(False, validator, True, c_eb, c_po))
        if matched_literal_child:
            return

        rep = self._probe_dir(node, lit)
        if rep is not None:
            if last:
                out.append(Resolution(True, None, True, c_eb, c_po))
            else:
                self._match(rep, atoms, i + 1, c_eb, c_po, out, memo, budget)
        if last:
            allowed, validator, known = self._probe_file(node, lit)
            if allowed:
                out.append(Resolution(False, validator, known, c_eb, c_po))
            if (lit is None or lit not in self.dir_vocab) and self._probe_create(
                node, lit if lit is not None else _PROBE, self._FileType.SYMLINK
            ):
                out.append(Resolution(False, None, True, c_eb, c_po))

    # -- probe helpers ---------------------------------------------------------------

    def _is_role(self, node, class_name: str) -> bool:
        cls = getattr(self._schema, class_name, None)
        return cls is not None and isinstance(node, cls)

    def _probe_create(self, node, name: str, ftype) -> bool:
        try:
            node.may_create(name, ftype, self._cred)
            return True
        except self._FsError:
            return False

    def _closed(self, cls: type) -> bool:
        """Structural objects (populate() without child_factory) are closed."""
        has_populate = any("populate" in k.__dict__ for k in cls.__mro__)
        return has_populate and cls.child_factory is self._DirInode.child_factory

    def _probe_dir(self, node, name: str | None):
        """The representative child directory for ``name`` (None = wildcard).

        A wildcard directory edge must produce a *schema* node class —
        a factory that falls back to a plain DirInode (a host growing an
        arbitrary subtree) carries no structure worth matching into, and
        admitting it would let any pattern suffix-match inside it.
        """
        if name is not None and name in self.dir_vocab:
            # Structural names are reserved: interpreting `switches` as
            # "an object that happens to be named switches" would let any
            # typo'd suffix pattern re-anchor inside a fresh subtree.
            return None
        probe = name if name is not None else _PROBE
        if not self._probe_create(node, probe, self._FileType.DIRECTORY):
            return None
        if self._closed(type(node)):
            return None
        try:
            child = node.child_factory(probe, self._FileType.DIRECTORY, self._cred)
        except self._FsError:
            return None
        if type(child).__module__ != self._schema.__name__:
            return None
        return self._rep(child)

    def _probe_file(self, node, name: str | None):
        """(allowed, validator, validator_known) for creating file ``name``."""
        if name is not None and name in self.dir_vocab:
            return False, None, False
        probe = name if name is not None else _PROBE
        if not self._probe_create(node, probe, self._FileType.REGULAR):
            return False, None, False
        if self._closed(type(node)):
            return False, None, False
        if name is None:
            return True, None, False
        try:
            child = node.child_factory(name, self._FileType.REGULAR, self._cred)
        except self._FsError:
            return False, None, False
        return True, getattr(child, "validator", None), True

    def _rep(self, fresh):
        """Map a factory-built node onto its populated representative."""
        cls = type(fresh)
        rep = self._reps.get(cls)
        if rep is not None:
            return rep
        populate = getattr(fresh, "populate", None)
        if callable(populate):
            try:
                populate()
            except self._FsError:
                pass  # a factory node that can't populate detached is still usable
        self._reps[cls] = fresh
        return fresh

def segments_of(pattern: PathPattern) -> tuple:
    """Convenience: the atoms tuple (used by tests)."""
    return pattern.atoms


__all__ = ["MatchResult", "NamespaceModel", "Resolution", "Seg", "segments_of"]
