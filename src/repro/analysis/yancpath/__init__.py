"""yancpath: schema-aware interprocedural path & typestate analysis.

The yanc thesis — "the file system *is* the API" (§3) — means the bug
classes a typed controller framework rejects at compile time appear here
as *strings*: a mistyped ``/net/switches/<sw>/flows/...`` path, a value
written in a format the target file's validator rejects, a flow mutated
without its §3.4 ``version`` commit, an fd leaked on an exception path.
yanclint's per-file rules catch the syntactic shapes and yancrace only
sees what a workload executes; yancpath closes the gap statically, for
every line of apps/drivers/views/examples, before anything runs.

Three layers:

* :mod:`repro.analysis.yancpath.grammar` — a **namespace model derived
  from the live schema** (``yancfs/schema.py`` + ``validate.py``) at
  analysis time, so the model can never drift from the tree it judges;
* :mod:`repro.analysis.yancpath.patterns` — an abstract string lattice
  for paths built from constants, f-strings, ``os.path.join``, and
  helper-function summaries;
* :mod:`repro.analysis.yancpath.interp` — the interprocedural abstract
  interpreter: per-syscall-site path checks plus the fd-lifecycle and
  flow-commit typestate passes.

Findings ship through the ordinary :class:`repro.analysis.core.Finding`
machinery, so ``# yanclint: disable=<kind>`` suppressions work the same
way they do for yanclint rules.
"""

from __future__ import annotations

from repro.analysis.yancpath.checker import KINDS, analyze_yancpath
from repro.analysis.yancpath.grammar import NamespaceModel

__all__ = ["KINDS", "NamespaceModel", "analyze_yancpath"]
