"""The yancpath interprocedural abstract interpreter.

One structural pass per function (and per module body, which examples use
as their main program) evaluates every expression into the token-string
lattice of :mod:`repro.analysis.yancpath.patterns`, records each
recognized syscall site with its abstract path arguments, and runs two
typestate machines on the way through:

* **fd lifecycle** — an fd returned by ``open`` must reach ``close`` on
  every path, including exception edges; a ``try/finally`` whose finally
  closes the fd protects it, passing the fd to another function
  transfers ownership, returning it hands it to the caller;
* **flow commit (§3.4)** — a write that stages flow spec state
  (``match.*``/``action.*``/``priority``/``timeout``/...) obligates a
  ``version`` increment before every *normal* exit of the function;
  exception paths are exempt (a helper bailing on bad input is not a
  protocol violation, and the partially-staged flow is invisible to the
  driver until versioned anyway).

Interprocedural reasoning is by summaries: each function's return value
is summarized as a token string with *named* holes for its parameters
(substituted at call sites, so ``yc.flow_path(sw, n)`` composes exactly),
plus a commit effect — ``always`` (the function commits on every normal
path), ``never``, or ``cond(<param>)`` for the ``if commit:`` idiom that
``create_flow`` and the flow pusher use — and a ``stages`` bit saying
whether it writes spec files at all.  Summaries are memoized and guarded
against recursion (an in-progress callee summarizes as unknown).

Everything here errs toward silence: an expression the lattice cannot
track becomes an anonymous hole, a call it cannot resolve returns
unknown, and the checker only flags what the grammar *positively*
refutes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.analysis.yancpath import patterns as P

# -- the recognized syscall surface ----------------------------------------------------

#: method name -> indices of positional args that are paths.
PATH_ARGS: dict[str, tuple[int, ...]] = {
    "open": (0,),
    "read_text": (0,),
    "read_bytes": (0,),
    "write_text": (0,),
    "write_bytes": (0,),
    "mkdir": (0,),
    "makedirs": (0,),
    "rmdir": (0,),
    "unlink": (0,),
    "rename": (0, 1),
    "symlink": (0, 1),
    "readlink": (0,),
    "link": (0, 1),
    "stat": (0,),
    "lstat": (0,),
    "exists": (0,),
    "listdir": (0,),
    "truncate": (0,),
    "chmod": (0,),
    "chown": (0,),
    "walk": (0,),
    "scandir": (0,),
    "inotify_add_watch": (1,),
    "watch": (0,),
}

#: fd-consuming syscalls that do NOT transfer ownership of a tracked fd.
FD_SAFE_METHODS = frozenset(
    {"close", "read", "write", "pread", "pwrite", "fstat", "lseek", "ftruncate", "fsync"}
)

_WRITE_METHODS = frozenset({"write_text", "write_bytes"})

#: The one :class:`~repro.vfs.uring.IoUring` method that is a kernel
#: crossing.  ``prep``/``prep_write_file``/``completions`` touch only the
#: shared-memory ring, so only ``submit`` registers as a syscall site —
#: which is exactly what makes batched loops legible to yancperf: the
#: storm collapses to one recognized op per flush.
URING_METHODS = frozenset({"submit"})

#: Receiver spellings treated as a ring handle (mirrors the ``sc`` /
#: ``.sc`` convention for Syscalls receivers).
_URING_RECEIVERS = ("ring", "uring", "_uring")

#: Ring submission-queue staging calls.  They are *not* kernel crossings
#: (only ``submit`` is), but yanccrash needs to see them: a linked chain
#: is the batched §3.4 atomicity unit, so which preps share a chain
#: decides whether a severed chain can expose a torn flow.
URING_PREP_METHODS = frozenset({"prep", "prep_write_file"})

#: ``prep(op, ...)`` op name -> positional indices (of the *prep* call)
#: that carry paths.
URING_PREP_PATH_ARGS: dict[str, tuple[int, ...]] = {
    "open": (1,),
    "mkdir": (1,),
    "rmdir": (1,),
    "unlink": (1,),
    "rename": (1, 2),
    "symlink": (1, 2),
    "link": (1, 2),
}


def syscall_method(call: ast.Call) -> str | None:
    """The syscall name when ``call``'s receiver looks like a Syscalls.

    Recognized receivers: a bare ``sc``/``syscalls`` name, any attribute
    spelled ``.sc`` / ``.root_sc`` (``self.sc``, ``host.root_sc``), ``self``
    itself for ``watch`` only (the Process run-loop helper), and — for the
    :data:`URING_METHODS` crossing only — a ``ring``/``uring`` name or
    ``.ring``/``.uring``/``._uring`` attribute (the §8.1 batch ring).
    """
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    method = func.attr
    base = func.value
    if isinstance(base, ast.Name):
        if base.id in ("sc", "syscalls"):
            return method
        if base.id in _URING_RECEIVERS and method in URING_METHODS:
            return method
        if base.id == "self" and method == "watch":
            return method
    elif isinstance(base, ast.Attribute):
        if base.attr in ("sc", "root_sc"):
            return method
        if base.attr in _URING_RECEIVERS and method in URING_METHODS:
            return method
    return None


def uring_prep_method(call: ast.Call) -> str | None:
    """The prep-call name when ``call``'s receiver looks like a ring."""
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in URING_PREP_METHODS:
        return None
    base = func.value
    if isinstance(base, ast.Name) and base.id in _URING_RECEIVERS:
        return func.attr
    if isinstance(base, ast.Attribute) and base.attr in _URING_RECEIVERS:
        return func.attr
    return None


# -- project indexing ------------------------------------------------------------------


@dataclass
class FuncDecl:
    """One function or method, ready to interpret."""

    node: ast.AST  # FunctionDef | AsyncFunctionDef
    module: "ModuleInfo"
    class_name: str | None
    params: tuple[str, ...]  # leading self dropped for methods
    defaults: dict[str, ast.expr]

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ModuleInfo:
    """Per-module interpretation context."""

    src: object  # core.SourceFile
    functions: list[FuncDecl] = field(default_factory=list)
    by_class: dict[str, dict[str, FuncDecl]] = field(default_factory=dict)
    class_bases: dict[str, tuple[str, ...]] = field(default_factory=dict)
    global_env: dict[str, tuple] = field(default_factory=dict)


@dataclass
class Summary:
    """What a call site needs to know about a callee."""

    ret: tuple  # token string, named holes = params
    effect: tuple  # ("always",) | ("never",) | ("cond", param)
    stages: bool  # writes flow spec files (directly or transitively)


_UNKNOWN_SUMMARY = Summary(ret=P.UNKNOWN, effect=("never",), stages=False)


def _decl_of(node, module: ModuleInfo, class_name: str | None) -> FuncDecl:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    defaults: dict[str, ast.expr] = {}
    pos_defaults = args.defaults
    if pos_defaults:
        for name, default in zip(names[-len(pos_defaults) :], pos_defaults):
            defaults[name] = default
    for kwarg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None:
            defaults[kwarg.arg] = default
        names.append(kwarg.arg)
    if class_name is not None and names and names[0] in ("self", "cls"):
        names = names[1:]
    return FuncDecl(
        node=node, module=module, class_name=class_name, params=tuple(names), defaults=defaults
    )


class ProjectIndex:
    """Call-graph index + summary cache over all analyzed modules."""

    def __init__(self, sources, judge: Callable[[tuple], str | None]):
        self.judge = judge
        self.modules: list[ModuleInfo] = []
        self.by_name: dict[str, list[FuncDecl]] = {}
        #: class name -> its module, None when the name is ambiguous.
        self.classes: dict[str, ModuleInfo | None] = {}
        self._summaries: dict[int, Summary] = {}
        self._in_progress: set[int] = set()
        self._attr_envs: dict[tuple[int, str], tuple[dict, dict]] = {}
        for src in sources:
            module = ModuleInfo(src=src)
            for stmt in src.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._add(_decl_of(stmt, module, None))
                elif isinstance(stmt, ast.ClassDef):
                    methods = module.by_class.setdefault(stmt.name, {})
                    module.class_bases[stmt.name] = tuple(
                        b.id for b in stmt.bases if isinstance(b, ast.Name)
                    )
                    self.classes[stmt.name] = None if stmt.name in self.classes else module
                    for item in stmt.body:
                        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            decl = _decl_of(item, module, stmt.name)
                            methods[item.name] = decl
                            self._add(decl)
                elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    if isinstance(target, ast.Name) and isinstance(stmt.value, ast.Constant):
                        if isinstance(stmt.value.value, str):
                            module.global_env[target.id] = P.tokens_from_literal(stmt.value.value)
            self.modules.append(module)

    def method_on(self, class_name: str, method: str, _seen: frozenset = frozenset()) -> FuncDecl | None:
        """Look ``method`` up on ``class_name``, walking declared bases."""
        if class_name in _seen:
            return None
        module = self.classes.get(class_name)
        if module is None:
            return None
        decl = module.by_class.get(class_name, {}).get(method)
        if decl is not None:
            return decl
        for base in module.class_bases.get(class_name, ()):
            found = self.method_on(base, method, _seen | {class_name})
            if found is not None:
                return found
        return None

    def _add(self, decl: FuncDecl) -> None:
        self.by_name.setdefault(decl.name, []).append(decl)
        decl.module.functions.append(decl)

    # -- summaries -------------------------------------------------------------------

    def summary(self, decl: FuncDecl) -> Summary:
        key = id(decl.node)
        cached = self._summaries.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:
            return _UNKNOWN_SUMMARY
        self._in_progress.add(key)
        try:
            interp = FuncInterp(self, decl)
            interp.run()
            ret = None
            for tokens in interp.returns:
                ret = P.merge(ret, tokens)
            if ret is None:
                ret = P.UNKNOWN
            if interp.cond_commit is not None:
                effect: tuple = ("cond", interp.cond_commit)
            elif interp.exit_committed and all(interp.exit_committed):
                effect = ("always",)
            else:
                effect = ("never",)
            summary = Summary(ret=ret, effect=effect, stages=interp.ever_staged)
        finally:
            self._in_progress.discard(key)
        self._summaries[key] = summary
        return summary

    def resolve_call(
        self, call: ast.Call, caller: FuncDecl | None, recv_type: str | None = None
    ) -> FuncDecl | None:
        """Best-effort callee resolution: receiver type, then unique name."""
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
            if recv_type is not None:
                typed = self.method_on(recv_type, name)
                if typed is not None:
                    return typed
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and caller is not None
                and caller.class_name is not None
            ):
                own = self.method_on(caller.class_name, name)
                if own is not None and own.module is caller.module:
                    return own
                own = caller.module.by_class.get(caller.class_name, {}).get(name)
                if own is not None:
                    return own
        else:
            return None
        candidates = self.by_name.get(name)
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        # Ambiguous names are only usable when every definition agrees on
        # the parameter list and commit behaviour; otherwise stay silent.
        first = self.summary(candidates[0])
        params = candidates[0].params
        for other in candidates[1:]:
            if other.params != params:
                return None
            summ = self.summary(other)
            if summ.effect != first.effect or summ.stages != first.stages:
                return None
        return candidates[0]

    # -- instance attribute environments ---------------------------------------------

    def attr_env(self, module: ModuleInfo, class_name: str) -> tuple[dict, dict]:
        """``(values, types)`` for ``self.X``, gleaned from ``__init__``.

        Named parameter holes are anonymized: outside the constructor the
        argument values are unknown, but the *shape* (``self.root`` is a
        single segment, ``self.log_path`` is ``/var/...``) survives — and
        ``self.yc = YancClient(...)`` types the attribute so method calls
        through it resolve to the right class.  Declared base classes
        contribute their own ``__init__`` attributes underneath.
        """
        key = (id(module.src), class_name)
        cached = self._attr_envs.get(key)
        if cached is not None:
            return cached
        self._attr_envs[key] = ({}, {})  # recursion guard
        env: dict[str, tuple] = {}
        types: dict[str, str] = {}
        for base in module.class_bases.get(class_name, ()):
            base_module = self.classes.get(base)
            if base_module is not None:
                base_env, base_types = self.attr_env(base_module, base)
                env.update(base_env)
                types.update(base_types)
        init = module.by_class.get(class_name, {}).get("__init__")
        if init is not None:
            interp = FuncInterp(self, init)
            interp.run()
            env.update(
                {
                    name: _anonymize(tokens)
                    for name, tokens in interp.state.env.items()
                    if name.startswith("self.")
                }
            )
            types.update(
                {name: t for name, t in interp.state.types.items() if name.startswith("self.")}
            )
        self._attr_envs[key] = (env, types)
        return self._attr_envs[key]


def _anonymize(tokens: tuple) -> tuple:
    return tuple(P.hole_token() if t[0] == "hole" else t for t in tokens)


# -- interpreter state -----------------------------------------------------------------


@dataclass
class FdInfo:
    site: ast.AST
    protected: bool = False
    #: The judged role of the opened path ("stage"/"commit"/None): a
    #: write/pwrite through the fd carries the same §3.4 obligation as a
    #: write_text to the path (commit_flow commits via open + pwrite).
    role: str | None = None


@dataclass
class State:
    env: dict[str, tuple] = field(default_factory=dict)
    types: dict[str, str] = field(default_factory=dict)  # var -> class name
    fds: dict[str, FdInfo] = field(default_factory=dict)
    staged: dict[int, ast.AST] = field(default_factory=dict)  # id(node) -> node
    listings: set[str] = field(default_factory=set)  # vars holding listdir() results
    tablerows: set[str] = field(default_factory=set)  # vars holding table.entries() results
    committed: bool = False
    returned: bool = False

    def clone(self) -> "State":
        return State(
            env=dict(self.env),
            types=dict(self.types),
            fds={k: FdInfo(v.site, v.protected, v.role) for k, v in self.fds.items()},
            staged=dict(self.staged),
            listings=set(self.listings),
            tablerows=set(self.tablerows),
            committed=self.committed,
            returned=self.returned,
        )


def _merge_states(a: State, b: State) -> State:
    """Join two branch states (the continuation of an If/Try)."""
    if a.returned and not b.returned:
        return b
    if b.returned and not a.returned:
        return a
    env: dict[str, tuple] = {}
    for name in set(a.env) | set(b.env):
        env[name] = P.merge(a.env.get(name), b.env.get(name))
    types = {name: t for name, t in a.types.items() if b.types.get(name) == t}
    fds: dict[str, FdInfo] = {}
    for name in set(a.fds) | set(b.fds):
        fa, fb = a.fds.get(name), b.fds.get(name)
        keep = fa or fb
        fds[name] = FdInfo(keep.site, (fa.protected if fa else True) and (fb.protected if fb else True))
    staged = dict(a.staged)
    staged.update(b.staged)
    return State(
        env=env,
        types=types,
        fds=fds,
        staged=staged,
        listings=a.listings | b.listings,
        tablerows=a.tablerows | b.tablerows,
        committed=a.committed and b.committed,
        returned=a.returned and b.returned,
    )


# -- recorded syscall sites ------------------------------------------------------------

#: Hole name bound to loop targets: a path containing one varies per iteration.
LOOP_HOLE = "~loop"


def loop_variant(tokens: tuple) -> bool:
    """True when the token string depends on the enclosing loop's variable."""
    return any(t[0] == "hole" and t[1] == LOOP_HOLE for t in tokens)


@dataclass
class LoopInfo:
    """One loop (or comprehension generator) the interpreter descended into."""

    node: ast.AST  # For | While | comprehension
    depth: int  # nesting depth of the loop *body* (outermost = 1)
    bounded: bool  # iterates a compile-time-constant collection
    kind: str  # "listdir" | "scandir" | "walk" | "entries" | "while" | "for"


@dataclass
class CallInfo:
    """One resolved project-internal call, for interprocedural cost rollup."""

    node: ast.Call
    callee: FuncDecl
    depth: int
    loop: Optional[LoopInfo]


@dataclass
class OpSite:
    """Any recognized metered operation (path-based or fd-based) with context."""

    node: ast.Call
    method: str
    depth: int
    loop: Optional[LoopInfo]


@dataclass
class Site:
    """One recognized syscall call with its abstract path arguments."""

    node: ast.Call
    method: str
    paths: tuple[tuple, ...]  # token string per path argument
    content: object = None  # compile-time constant payload for write_text/bytes
    depth: int = 0  # loop nesting depth at the site
    loop: Optional[LoopInfo] = None  # innermost enclosing loop
    #: Enclosing conditional arms, outermost first: ``(id(if_node), arm)``
    #: pairs.  Two sites are program-ordered by visit order only when one
    #: branch stack prefixes the other — sites in sibling arms are not.
    branch: tuple = ()


@dataclass
class UringSite:
    """One ring submission-queue staging call (``prep``/``prep_write_file``).

    ``link`` is the chain bit: ``True``/``False`` for a compile-time
    constant, ``None`` when dynamic (treated as chain-continuing, erring
    toward silence).  ``content`` is the constant payload of a
    ``prep_write_file``, when there is one.
    """

    node: ast.Call
    op: str  # "write_file" for prep_write_file, else the prep op name
    paths: tuple[tuple, ...]
    link: bool | None
    content: object = None
    depth: int = 0
    loop: Optional[LoopInfo] = None
    branch: tuple = ()


#: Calls whose first argument unwraps to the underlying iterable.
_ITER_WRAPPERS = frozenset({"sorted", "list", "tuple", "set", "reversed", "enumerate", "iter"})


def _unwrap_iter(expr):
    """Peel ``sorted(...)``/``list(...)``/... down to the iterable expression."""
    while (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in _ITER_WRAPPERS
        and expr.args
    ):
        expr = expr.args[0]
    return expr


_STMT_BUDGET = 20000


class FuncInterp:
    """Interpret one function body (or a module body as a pseudo-function)."""

    def __init__(self, index: ProjectIndex, decl: FuncDecl | None, module: ModuleInfo | None = None):
        self.index = index
        self.decl = decl
        self.module = decl.module if decl is not None else module
        self.state = State()
        self.sites: list[Site] = []
        self.uring_sites: list[UringSite] = []  # ring prep/prep_write_file calls
        self.op_sites: list[OpSite] = []  # every metered op, incl. fd-based
        self.rpc_sites: list[OpSite] = []  # distfs channel.call round trips
        self.calls: list[CallInfo] = []  # resolved project-internal calls
        self.loops: list[LoopInfo] = []  # every loop descended into, in visit order
        self._loops: list[LoopInfo] = []
        self.returns: list[tuple] = []
        self.exit_committed: list[bool] = []
        self.cond_commit: str | None = None
        self.ever_staged = False
        #: (kind, node) local typestate findings for the checker.
        self.local_findings: list[tuple[str, ast.AST]] = []
        self._leaked: set[int] = set()
        self._uncommitted: set[int] = set()
        self._finally_closes: list[set[str]] = []
        self._branches: list[tuple[int, str]] = []
        self._budget = _STMT_BUDGET
        self.params: tuple[str, ...] = decl.params if decl is not None else ()

    def run(self) -> None:
        for name in self.params:
            self.state.env[name] = (P.hole_token(name),)
        body = self.decl.node.body if self.decl is not None else self.module.src.tree.body
        self.visit_block(body, self.state)
        if not self.state.returned:
            self._exit(self.state, node=None, value_name=None)

    # -- statements ------------------------------------------------------------------

    def visit_block(self, stmts, state: State) -> None:
        for stmt in stmts:
            if state.returned or self._budget <= 0:
                return
            self._budget -= 1
            before = {
                name for name, fd in state.fds.items() if not fd.protected
            }
            self.visit_stmt(stmt, state)
            if before and _may_raise(stmt):
                for name in before:
                    fd = state.fds.get(name)
                    if fd is not None and not fd.protected:
                        self._leak(fd.site)

    def visit_stmt(self, stmt, state: State) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, state)
            value_type = self._type_of(stmt.value, state)
            listing = self._listing_origin(stmt.value, state)
            rows = self._entries_origin(stmt.value, state)
            for target in stmt.targets:
                self._assign(target, value, state, value_type)
                if isinstance(target, ast.Name):
                    (state.listings.add if listing else state.listings.discard)(target.id)
                    (state.tablerows.add if rows else state.tablerows.discard)(target.id)
            self._track_open(stmt, state)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.eval(stmt.value, state)
                self._assign(stmt.target, value, state)
                self._track_open(stmt, state)
        elif isinstance(stmt, ast.AugAssign):
            value = self.eval(stmt.value, state)
            if isinstance(stmt.op, ast.Add) and isinstance(stmt.target, ast.Name):
                old = state.env.get(stmt.target.id, P.UNKNOWN)
                state.env[stmt.target.id] = P.concat(old, value)
            elif isinstance(stmt.target, ast.Name):
                state.env[stmt.target.id] = P.UNKNOWN
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, state)
        elif isinstance(stmt, ast.Return):
            value_name = stmt.value.id if isinstance(stmt.value, ast.Name) else None
            tokens = self.eval(stmt.value, state) if stmt.value is not None else None
            if tokens is not None:
                self.returns.append(tokens)
            self._exit(state, node=stmt, value_name=value_name)
            state.returned = True
        elif isinstance(stmt, ast.If):
            self._visit_if(stmt, state)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.eval(stmt.iter, state)
            info = self._loop_info(stmt, state)
            body_state = state.clone()
            self._bind_holes(stmt.target, body_state, loop=True)
            self.loops.append(info)
            self._loops.append(info)
            self.visit_block(stmt.body, body_state)
            self._loops.pop()
            merged = _merge_states(state, body_state)
            self._replace(state, merged)
            self.visit_block(stmt.orelse, state)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test, state)
            body_state = state.clone()
            info = LoopInfo(node=stmt, depth=len(self._loops) + 1, bounded=False, kind="while")
            self.loops.append(info)
            self._loops.append(info)
            self.visit_block(stmt.body, body_state)
            self._loops.pop()
            merged = _merge_states(state, body_state)
            self._replace(state, merged)
            self.visit_block(stmt.orelse, state)
        elif isinstance(stmt, ast.Try):
            self._visit_try(stmt, state)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.eval(item.context_expr, state)
                if item.optional_vars is not None:
                    self._bind_holes(item.optional_vars, state)
            self.visit_block(stmt.body, state)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc, state)
            for fd in state.fds.values():
                if not fd.protected:
                    self._leak(fd.site)
            state.returned = True  # this path ends; §3.4 obligations waived
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            state.env[stmt.name] = P.UNKNOWN
        elif isinstance(stmt, (ast.Delete, ast.Assert, ast.Global, ast.Nonlocal)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child, state)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom, ast.Pass, ast.Break, ast.Continue)):
            pass
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child, state)

    def _visit_if(self, stmt: ast.If, state: State) -> None:
        self.eval(stmt.test, state)
        then_state = state.clone()
        self._branches.append((id(stmt), "then"))
        self.visit_block(stmt.body, then_state)
        self._branches.pop()
        else_state = state.clone()
        self._branches.append((id(stmt), "else"))
        self.visit_block(stmt.orelse, else_state)
        self._branches.pop()
        merged = _merge_states(then_state, else_state)
        # The §3.4 `if commit: ...commit...` idiom: a parameter guards the
        # commit.  The function's obligation becomes conditional — record
        # it for the summary and treat the local obligation as discharged
        # (callers passing commit=False inherit the staging).
        if (
            isinstance(stmt.test, ast.Name)
            and stmt.test.id in self.params
            and not stmt.orelse
            and then_state.committed
            and not state.committed
        ):
            self.cond_commit = stmt.test.id
            merged.staged = dict(then_state.staged)
            merged.committed = state.committed
        self._replace(state, merged)

    def _visit_try(self, stmt: ast.Try, state: State) -> None:
        closes = _closed_fd_names(stmt.finalbody)
        for name in closes:
            fd = state.fds.get(name)
            if fd is not None:
                fd.protected = True
        self._finally_closes.append(closes)
        body_state = state.clone()
        self.visit_block(stmt.body, body_state)
        self._finally_closes.pop()
        results = [body_state]
        for position, handler in enumerate(stmt.handlers):
            handler_state = _merge_states(state, body_state).clone()
            handler_state.returned = False
            if handler.name:
                handler_state.env[handler.name] = P.UNKNOWN
            self._branches.append((id(stmt), f"except{position}"))
            self.visit_block(handler.body, handler_state)
            self._branches.pop()
            results.append(handler_state)
        merged = results[0]
        for other in results[1:]:
            merged = _merge_states(merged, other)
        self.visit_block(stmt.orelse, merged)
        self.visit_block(stmt.finalbody, merged)
        self._replace(state, merged)

    def _replace(self, state: State, new: State) -> None:
        state.env = new.env
        state.types = new.types
        state.fds = new.fds
        state.staged = new.staged
        state.committed = new.committed
        state.returned = new.returned

    def _bind_holes(self, target, state: State, loop: bool = False) -> None:
        # Loop targets get a *named* hole so downstream consumers (yancperf)
        # can tell iteration-variant paths from loop-constant ones; for the
        # grammar both finalize to the same wildcard.
        tokens = (P.hole_token(LOOP_HOLE),) if loop else P.UNKNOWN
        if isinstance(target, ast.Name):
            state.env[target.id] = tokens
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_holes(elt, state, loop=loop)
        elif isinstance(target, ast.Starred):
            self._bind_holes(target.value, state, loop=loop)

    def _loop_info(self, stmt, state: State) -> LoopInfo:
        """Classify a For loop: what it iterates and whether it is bounded."""
        bounded, kind = self._classify_iter(stmt.iter, state)
        return LoopInfo(node=stmt, depth=len(self._loops) + 1, bounded=bounded, kind=kind)

    def _comp_loop_info(self, node, gen, state: State) -> LoopInfo:
        bounded, kind = self._classify_iter(gen.iter, state)
        return LoopInfo(node=node, depth=len(self._loops) + 1, bounded=bounded, kind=kind)

    def _classify_iter(self, iter_expr, state: State) -> tuple[bool, str]:
        iterable = _unwrap_iter(iter_expr)
        if isinstance(iterable, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
            return True, "for"
        if isinstance(iterable, ast.Call):
            func = iterable.func
            if isinstance(func, ast.Name) and func.id == "range":
                return all(isinstance(a, ast.Constant) for a in iterable.args), "for"
            method = syscall_method(iterable)
            if method in ("listdir", "scandir", "walk"):
                return False, method
            if isinstance(func, ast.Attribute) and func.attr.lstrip("_") == "entries":
                return False, "entries"
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "values"
                and isinstance(func.value, ast.Attribute)
                and "entries" in func.value.attr
            ):
                return False, "entries"
            return False, "for"
        if isinstance(iterable, ast.Name) and iterable.id in state.listings:
            return False, "listdir"
        if isinstance(iterable, ast.Name) and iterable.id in state.tablerows:
            return False, "entries"
        if isinstance(iterable, ast.Attribute) and "entries" in iterable.attr:
            return False, "entries"
        return False, "for"

    def _listing_origin(self, expr, state: State) -> bool:
        """Does ``expr`` evaluate to the result of a ``listdir()``?"""
        inner = _unwrap_iter(expr)
        if isinstance(inner, ast.Call):
            return syscall_method(inner) == "listdir"
        if isinstance(inner, ast.Name):
            return inner.id in state.listings
        return False

    def _entries_origin(self, expr, state: State) -> bool:
        """Does ``expr`` evaluate to a flow table's full entry list?

        Provenance tracking for the linear-table-scan checker: stashing
        ``table.entries()`` in a local and looping over the local later is
        still a full-table scan, even though the loop iterable is a bare
        name.  Mirrors the ``listdir`` provenance in ``state.listings``.
        """
        inner = _unwrap_iter(expr)
        if isinstance(inner, ast.Call):
            func = inner.func
            if isinstance(func, ast.Attribute) and func.attr.lstrip("_") == "entries":
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "values"
                and isinstance(func.value, ast.Attribute)
                and "entries" in func.value.attr
            ):
                return True
            return False
        if isinstance(inner, ast.Name):
            return inner.id in state.tablerows
        return False

    def _assign(self, target, value: tuple, state: State, value_type: str | None = None) -> None:
        if isinstance(target, ast.Name):
            if target.id in state.fds:
                del state.fds[target.id]  # rebound: old fd escapes tracking
            state.env[target.id] = value
            if value_type is not None:
                state.types[target.id] = value_type
            else:
                state.types.pop(target.id, None)
        elif isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                state.env[f"self.{target.attr}"] = value
                if value_type is not None:
                    state.types[f"self.{target.attr}"] = value_type
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, P.UNKNOWN, state)

    def _type_of(self, expr, state: State) -> str | None:
        """The project class an expression constructs or aliases, if clear."""
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and self.index.classes.get(func.id) is not None:
                return func.id
            # self.yc.in_view(...) etc.: a resolvable method annotated by
            # convention — returning `self` keeps the receiver's type.
            return None
        if isinstance(expr, ast.Name):
            return state.types.get(expr.id)
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            if expr.value.id == "self":
                key = f"self.{expr.attr}"
                if key in state.types:
                    return state.types[key]
                if self.decl is not None and self.decl.class_name is not None:
                    _env, types = self.index.attr_env(self.decl.module, self.decl.class_name)
                    return types.get(key)
        return None

    def _track_open(self, stmt, state: State) -> None:
        """``fd = sc.open(...)`` starts fd-lifecycle tracking."""
        value = stmt.value
        if not isinstance(value, ast.Call) or syscall_method(value) != "open":
            return
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        if len(targets) == 1 and isinstance(targets[0], ast.Name):
            protected = any(targets[0].id in closes for closes in self._finally_closes)
            role = self.index.judge(self.eval(value.args[0], state)) if value.args else None
            state.fds[targets[0].id] = FdInfo(site=value, protected=protected, role=role)

    def _exit(self, state: State, node, value_name: str | None) -> None:
        """A normal exit: settle §3.4 obligations and open fds."""
        self.exit_committed.append(state.committed)
        for staging in state.staged.values():
            if id(staging) not in self._uncommitted:
                self._uncommitted.add(id(staging))
                self.local_findings.append(("flow-no-commit", staging))
        for name, fd in state.fds.items():
            if not fd.protected and name != value_name:
                self._leak(fd.site)

    def _leak(self, site: ast.AST) -> None:
        if id(site) not in self._leaked:
            self._leaked.add(id(site))
            self.local_findings.append(("fd-leak-on-exception", site))

    # -- expressions -----------------------------------------------------------------

    def eval(self, node, state: State) -> tuple:
        """Abstract-evaluate ``node`` to a token string (never None)."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str):
                return P.tokens_from_literal(node.value)
            return P.UNKNOWN
        if isinstance(node, ast.JoinedStr):
            parts = []
            for piece in node.values:
                if isinstance(piece, ast.Constant):
                    parts.append(P.tokens_from_literal(str(piece.value)))
                elif isinstance(piece, ast.FormattedValue):
                    inner = self.eval(piece.value, state)
                    if piece.format_spec is not None:
                        self.eval(piece.format_spec, state)
                        inner = P.UNKNOWN
                    parts.append(inner)
            return P.concat(*parts)
        if isinstance(node, ast.Name):
            if node.id in state.env:
                return state.env[node.id]
            if self.module is not None and node.id in self.module.global_env:
                return self.module.global_env[node.id]
            return P.UNKNOWN
        if isinstance(node, ast.Attribute):
            self.eval(node.value, state)
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                key = f"self.{node.attr}"
                if key in state.env:
                    return state.env[key]
                if self.decl is not None and self.decl.class_name is not None:
                    env, _types = self.index.attr_env(self.decl.module, self.decl.class_name)
                    if key in env:
                        return env[key]
            return P.UNKNOWN
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left, state)
            right = self.eval(node.right, state)
            if isinstance(node.op, ast.Add):
                return P.concat(left, right)
            if isinstance(node.op, ast.Div):  # pathlib's Path / "seg"
                return P.join([left, right])
            if isinstance(node.op, ast.Mod) and isinstance(node.left, ast.Constant) and isinstance(
                node.left.value, str
            ):
                return P.tokens_from_template(node.left.value)
            return P.UNKNOWN
        if isinstance(node, ast.BoolOp):
            result = None
            for value in node.values:
                result = P.merge(result, self.eval(value, state))
            return result if result is not None else P.UNKNOWN
        if isinstance(node, ast.IfExp):
            self.eval(node.test, state)
            return P.merge(self.eval(node.body, state), self.eval(node.orelse, state))
        if isinstance(node, ast.Call):
            return self.eval_call(node, state)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            comp_state = state  # comprehension sites still count
            for gen in node.generators:
                self.eval(gen.iter, comp_state)  # evaluated at the outer depth
                self._bind_holes(gen.target, comp_state, loop=True)
                info = self._comp_loop_info(node, gen, comp_state)
                self.loops.append(info)
                self._loops.append(info)
                for cond in gen.ifs:
                    self.eval(cond, comp_state)
            if isinstance(node, ast.DictComp):
                self.eval(node.key, comp_state)
                self.eval(node.value, comp_state)
            else:
                self.eval(node.elt, comp_state)
            del self._loops[len(self._loops) - len(node.generators) :]
            return P.UNKNOWN
        # Generic: recurse for site-recording, value unknown.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child, state)
        return P.UNKNOWN

    def eval_call(self, call: ast.Call, state: State) -> tuple:
        func = call.func
        # os.path.join(...) — join semantics
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "path"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "os"
        ):
            return P.join([self.eval(a, state) for a in call.args])
        # "<template>".format(...) — placeholders become holes
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "format"
            and isinstance(func.value, ast.Constant)
            and isinstance(func.value.value, str)
        ):
            for arg in call.args:
                self.eval(arg, state)
            for kw in call.keywords:
                self.eval(kw.value, state)
            return P.tokens_from_template(func.value.value)
        # Path(x) / clean(x) are abstractly the identity
        if isinstance(func, ast.Name) and func.id in ("Path", "clean", "str") and len(call.args) == 1:
            inner = self.eval(call.args[0], state)
            return inner if func.id != "str" else inner

        if isinstance(func, ast.Attribute):
            # The receiver can hide a metered call: sc.read_text(p).strip().
            self.eval(func.value, state)

        arg_tokens = [self.eval(a, state) for a in call.args]
        kw_tokens = {kw.arg: self.eval(kw.value, state) for kw in call.keywords if kw.arg}
        for kw in call.keywords:
            if kw.arg is None:
                self.eval(kw.value, state)

        prep = uring_prep_method(call)
        if prep is not None:
            self._record_uring(call, prep, arg_tokens)

        method = syscall_method(call)
        if method is not None:
            self.op_sites.append(
                OpSite(node=call, method=method, depth=len(self._loops), loop=self._innermost())
            )
        if method is not None and method in PATH_ARGS:
            self._record_site(call, method, arg_tokens, state)
            return P.UNKNOWN
        if method in ("write", "pwrite") and call.args and isinstance(call.args[0], ast.Name):
            # A write through an open fd stages or commits exactly as a
            # write_text to the opened path would (§3.4): commit_flow
            # publishes via open + pwrite so the in-place version rewrite
            # is a single durable op.
            fd = state.fds.get(call.args[0].id)
            if fd is not None and fd.role == "stage":
                state.staged[id(call)] = call
                self.ever_staged = True
            elif fd is not None and fd.role == "commit":
                state.staged.clear()
                state.committed = True
        if method == "close" and call.args and isinstance(call.args[0], ast.Name):
            state.fds.pop(call.args[0].id, None)
            return P.UNKNOWN
        if self._is_rpc(call):
            self.rpc_sites.append(
                OpSite(node=call, method="rpc", depth=len(self._loops), loop=self._innermost())
            )

        recv_type = None
        if isinstance(func, ast.Attribute):
            recv_type = self._type_of(func.value, state)
        callee = self.index.resolve_call(call, self.decl, recv_type)
        if callee is not None:
            self.calls.append(
                CallInfo(node=call, callee=callee, depth=len(self._loops), loop=self._innermost())
            )
            summary = self.index.summary(callee)
            bindings = self._bind_args(callee, call, arg_tokens, kw_tokens)
            self._apply_effect(call, callee, summary, state)
            self._escape_fds(call, state)
            return P.substitute(summary.ret, bindings)

        self._escape_fds(call, state)
        return P.UNKNOWN

    def _innermost(self) -> Optional[LoopInfo]:
        return self._loops[-1] if self._loops else None

    @staticmethod
    def _is_rpc(call: ast.Call) -> bool:
        """``<...>.channel.call(...)`` — one distfs RPC round trip."""
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr == "call"):
            return False
        base = func.value
        if isinstance(base, ast.Name):
            return base.id == "channel"
        return isinstance(base, ast.Attribute) and base.attr == "channel"

    def _record_site(self, call: ast.Call, method: str, arg_tokens: list, state: State) -> None:
        paths = tuple(arg_tokens[i] for i in PATH_ARGS[method] if i < len(arg_tokens))
        if not paths:
            return
        content = None
        if method in _WRITE_METHODS and len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
            content = call.args[1].value
        self.sites.append(
            Site(
                node=call,
                method=method,
                paths=paths,
                content=content,
                depth=len(self._loops),
                loop=self._innermost(),
                branch=tuple(self._branches),
            )
        )
        if method in _WRITE_METHODS:
            role = self.index.judge(paths[0])
            if role == "stage":
                state.staged[id(call)] = call
                self.ever_staged = True
            elif role == "commit":
                state.staged.clear()
                state.committed = True

    def _record_uring(self, call: ast.Call, prep: str, arg_tokens: list) -> None:
        """Record one ring staging call for the yanccrash chain checks."""
        content = None
        if prep == "prep_write_file":
            op = "write_file"
            paths = tuple(arg_tokens[:1])
            if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
                content = call.args[1].value
        else:
            first = call.args[0] if call.args else None
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                return
            op = first.value
            indices = URING_PREP_PATH_ARGS.get(op, ())
            paths = tuple(arg_tokens[i] for i in indices if i < len(arg_tokens))
        link: bool | None = False
        for kw in call.keywords:
            if kw.arg == "link":
                link = bool(kw.value.value) if isinstance(kw.value, ast.Constant) else None
        self.uring_sites.append(
            UringSite(
                node=call,
                op=op,
                paths=paths,
                link=link,
                content=content,
                depth=len(self._loops),
                loop=self._innermost(),
                branch=tuple(self._branches),
            )
        )

    def _bind_args(self, callee: FuncDecl, call: ast.Call, arg_tokens, kw_tokens) -> dict:
        bindings: dict[str, tuple] = {}
        for param, tokens in zip(callee.params, arg_tokens):
            bindings[param] = tokens
        for name, tokens in kw_tokens.items():
            if name in callee.params:
                bindings[name] = tokens
        return bindings

    def _apply_effect(self, call: ast.Call, callee: FuncDecl, summary: Summary, state: State) -> None:
        effect = summary.effect
        if effect == ("always",):
            state.staged.clear()
            state.committed = True
            return
        if effect[0] == "cond":
            value = self._arg_for(callee, call, effect[1])
            if isinstance(value, ast.Constant) and value.value is False:
                if summary.stages:
                    state.staged[id(call)] = call
                    self.ever_staged = True
            else:
                # True, a dynamic value, or the (True) default: the callee
                # commits — and a dynamic flag errs toward silence.
                state.staged.clear()
                state.committed = True
            return
        if summary.stages:  # ("never",) and it writes spec files
            state.staged[id(call)] = call
            self.ever_staged = True

    def _arg_for(self, callee: FuncDecl, call: ast.Call, param: str):
        """The AST expression bound to ``param`` at this call, or its default."""
        for kw in call.keywords:
            if kw.arg == param:
                return kw.value
        try:
            index = callee.params.index(param)
        except ValueError:
            return None
        if index < len(call.args):
            return call.args[index]
        return callee.defaults.get(param)

    def _escape_fds(self, call: ast.Call, state: State) -> None:
        """Passing a tracked fd to an unrecognized call transfers ownership."""
        method = syscall_method(call)
        if method in FD_SAFE_METHODS:
            return
        for arg in call.args:
            if isinstance(arg, ast.Name):
                state.fds.pop(arg.id, None)
        for kw in call.keywords:
            if isinstance(kw.value, ast.Name):
                state.fds.pop(kw.value.id, None)


def _closed_fd_names(stmts) -> set[str]:
    """fd variable names closed anywhere under ``stmts`` (a finally body)."""
    names: set[str] = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and syscall_method(node) == "close"
                and node.args
                and isinstance(node.args[0], ast.Name)
            ):
                names.add(node.args[0].id)
    return names


def _may_raise(stmt) -> bool:
    """Conservatively: a statement containing a call or raise may raise."""
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Call, ast.Raise)):
            return True
    return False


__all__ = [
    "FD_SAFE_METHODS",
    "LOOP_HOLE",
    "CallInfo",
    "FuncDecl",
    "FuncInterp",
    "LoopInfo",
    "ModuleInfo",
    "OpSite",
    "PATH_ARGS",
    "ProjectIndex",
    "Site",
    "Summary",
    "URING_METHODS",
    "URING_PREP_METHODS",
    "URING_PREP_PATH_ARGS",
    "UringSite",
    "loop_variant",
    "syscall_method",
    "uring_prep_method",
]
