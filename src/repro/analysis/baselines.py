"""Baseline bookkeeping shared by the yancrace/yancpath/yancperf CLIs.

A baseline is a JSON list of finding records checked into the repo; a
sweep only *fails* on findings whose key is not in it.  The three CLIs
key their records differently (race findings have no stable line; path
findings do), so the key function travels with the caller — this module
owns just the load/compare/write mechanics so the semantics cannot
drift between tools.
"""

from __future__ import annotations

import json
from typing import Callable


def load_baseline(path: str | None, key: Callable[[dict], tuple]) -> set[tuple]:
    """The key set of a baseline file; empty when no baseline is given."""
    if not path:
        return set()
    with open(path, encoding="utf-8") as fh:
        return {key(record) for record in json.load(fh)}


def split_fresh(
    records: list[dict], baseline_keys: set[tuple], key: Callable[[dict], tuple]
) -> list[dict]:
    """The records not covered by the baseline (the ones that fail a run)."""
    return [record for record in records if key(record) not in baseline_keys]


def write_records(path: str | None, records: list[dict]) -> None:
    """Write the full record list as an indented JSON baseline file."""
    if not path:
        return
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(records, fh, indent=2)
        fh.write("\n")


__all__ = ["load_baseline", "split_fresh", "write_records"]
