"""Rule ``error-discipline``: typed errors in the kernel, no silent swallows.

Applications are "written exactly like their C counterparts" (vfs/errors.py)
— they catch ``FileNotFound`` instead of checking errno.  That contract only
holds if everything under ``vfs/`` and ``yancfs/`` raises the typed
:mod:`repro.vfs.errors` hierarchy, so inside scope ``vfs`` any other raise
is an error.

Everywhere, a bare ``except:`` or an ``except Exception:`` that neither
re-raises nor *uses* the caught exception (binds it and reads it — e.g. to
record it, as ``proc/cron.py`` does for failure isolation) is an error:
that is how ``except Exception: pass`` silently ate cron failures.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, Severity, SourceFile, register


def _typed_error_names() -> frozenset[str]:
    """Exception class names exported by repro.vfs.errors."""
    try:
        from repro.vfs import errors as errors_mod
    except ImportError:  # analyzing from an environment without repro on the path
        return frozenset()
    names = set()
    for name, obj in vars(errors_mod).items():
        if isinstance(obj, type) and issubclass(obj, BaseException):
            names.add(name)
    return frozenset(names)


_BROAD = {"Exception", "BaseException"}


def _exception_types(handler: ast.ExceptHandler) -> list[ast.expr]:
    if handler.type is None:
        return []
    if isinstance(handler.type, ast.Tuple):
        return list(handler.type.elts)
    return [handler.type]


def _is_broad(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Name) and expr.id in _BROAD


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for stmt in handler.body for node in ast.walk(stmt))


def _handler_uses_binding(handler: ast.ExceptHandler) -> bool:
    if handler.name is None:
        return False
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and node.id == handler.name and isinstance(node.ctx, ast.Load):
                return True
    return False


class ErrorDisciplineRule(Rule):
    id = "error-discipline"
    severity = Severity.ERROR
    description = (
        "vfs/ and yancfs/ raise only typed repro.vfs.errors exceptions; broad/bare "
        "except clauses must re-raise or record the caught exception"
    )

    def __init__(self) -> None:
        self._typed = _typed_error_names()

    def check(self, src: SourceFile) -> Iterator[Finding]:
        in_vfs = "vfs" in src.scopes
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(src, node)
            elif in_vfs and isinstance(node, ast.Raise):
                yield from self._check_raise(src, node)

    def _check_handler(self, src: SourceFile, handler: ast.ExceptHandler) -> Iterator[Finding]:
        types = _exception_types(handler)
        if handler.type is None:
            yield self.finding(src, handler, "bare except: swallows everything, including KeyboardInterrupt; catch a typed exception")
            return
        if not any(_is_broad(t) for t in types):
            return
        if _handler_reraises(handler) or _handler_uses_binding(handler):
            return
        yield self.finding(
            src,
            handler,
            "broad except Exception without re-raise silently swallows failures; "
            "re-raise, catch a typed exception, or bind the error and record it",
        )

    def _check_raise(self, src: SourceFile, node: ast.Raise) -> Iterator[Finding]:
        exc = node.exc
        if exc is None:  # bare re-raise
            return
        if isinstance(exc, ast.Name):  # re-raising a bound variable
            return
        if not isinstance(exc, ast.Call):
            return
        func = exc.func
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        else:
            return
        if self._typed and name not in self._typed:
            yield self.finding(
                src,
                node,
                f"raise {name}(...) inside vfs/yancfs: use a typed repro.vfs.errors exception "
                "so applications can catch by errno class",
            )


register(ErrorDisciplineRule())
