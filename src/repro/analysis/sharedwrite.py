"""Rule ``shared-write-discipline``: flow writes commit in the same function.

§3.4 makes the ``version`` increment the one atomic commit point for a
flow: ``match.*``/``action.*``/``priority`` files are just staging until
the version bump publishes them to the driver.  A function that writes
flow-spec files but never commits leaves the flow torn — the switch never
sees the change, and any concurrent reader observes a half-edited spec.
yancrace catches this dynamically (``torn-commit``); this rule catches
the shape statically, before the code ever runs.

A function is flagged when it stages spec state — a ``write_text`` /
``write_bytes`` whose path literally names a spec file, or a
``create_flow(..., commit=False)`` — and contains no commit: no
``commit_flow`` call and no write to a ``version`` file.

Scopes: ``app`` and ``example`` (drivers *read* specs; client helpers
live in yancfs and stage on behalf of callers).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, Severity, SourceFile, register

#: Literal path fragments that mark a write as flow-spec staging.
_SPEC_MARKERS = ("match.", "action.", "/priority")
_WRITE_ATTRS = {"write_text", "write_bytes"}


def _static_text(node: ast.AST) -> str:
    """Concatenated constant parts of a string expression ('' if none)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        return "".join(
            part.value for part in node.values if isinstance(part, ast.Constant) and isinstance(part.value, str)
        )
    return ""


def _is_spec_write(call: ast.Call) -> str | None:
    """The offending spec fragment when ``call`` stages flow state."""
    if not isinstance(call.func, ast.Attribute):
        return None
    if call.func.attr in _WRITE_ATTRS and call.args:
        text = _static_text(call.args[0])
        for marker in _SPEC_MARKERS:
            if marker in text:
                return marker
        return None
    if call.func.attr == "create_flow":
        for kw in call.keywords:
            if kw.arg == "commit" and isinstance(kw.value, ast.Constant) and kw.value.value is False:
                return "commit=False"
    return None


def _is_commit(call: ast.Call) -> bool:
    if not isinstance(call.func, ast.Attribute):
        return False
    if call.func.attr == "commit_flow":
        return True
    if call.func.attr in _WRITE_ATTRS and call.args:
        return "version" in _static_text(call.args[0])
    return False


class SharedWriteDisciplineRule(Rule):
    id = "shared-write-discipline"
    severity = Severity.WARNING
    description = (
        "functions that write flow spec files (match.*/action.*/priority, or "
        "create_flow(commit=False)) must commit in the same function — a "
        "version write or commit_flow — or the flow stays torn (§3.4)"
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        if "app" not in src.scopes and "example" not in src.scopes:
            return
        for func in ast.walk(src.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            staged: list[tuple[ast.Call, str]] = []
            committed = False
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                marker = _is_spec_write(node)
                if marker is not None:
                    staged.append((node, marker))
                if _is_commit(node):
                    committed = True
            if committed:
                continue
            for call, marker in staged:
                yield self.finding(
                    src,
                    call,
                    f"flow spec staged here ({marker}) but {func.name}() never commits "
                    "(no version write / commit_flow): the switch will never see the "
                    "change and concurrent readers observe a torn flow (§3.4)",
                )


register(SharedWriteDisciplineRule())
