"""Rule ``notify-before-read``: poll loops must subscribe, not spin.

The yanc file system is push-based: §3.3 gives every directory inotify
semantics precisely so that consumers wait for ``IN_CREATE`` /
``IN_MOVED_TO`` / ``IN_MODIFY`` instead of re-reading state on a timer.
A loop that advances simulated time and re-reads files each iteration is
a polling loop — it burns cycles, observes torn intermediate states that
a notification-driven reader never sees, and races the writer (the
dynamic ``unsynchronized`` findings yancrace reports usually trace back
to exactly this shape).

A loop (``while``/``for``) is flagged when its body both reads state
(``read_text`` / ``read_bytes`` / ``read_events``) and advances time
(``run_for`` / ``run_until`` / ``step``, or ``.run(...)`` on a
simulator-ish receiver), unless the enclosing function subscribes first
(a ``watch`` / ``inotify_add_watch`` call anywhere in the function).

Scopes: ``app`` and ``example`` (drivers own device state and may poll
hardware; the shell's ``sh.run(command)`` is command dispatch, which the
receiver heuristic leaves alone).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.core import Finding, Rule, Severity, SourceFile, register

_READ_ATTRS = {"read_text", "read_bytes", "read_events"}
_ADVANCE_ATTRS = {"run_for", "run_until", "step"}
_SUBSCRIBE_ATTRS = {"watch", "inotify_add_watch"}
#: Receivers whose bare ``.run(...)`` means "advance the simulation".
_SIM_RECEIVER_RE = re.compile(r"(sim|ctl|net|controller)", re.IGNORECASE)


def _attr_call(node: ast.AST) -> str | None:
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _advances_time(node: ast.AST) -> bool:
    attr = _attr_call(node)
    if attr in _ADVANCE_ATTRS:
        return True
    if attr == "run":
        # `sh.run(command)` dispatches a shell command; only count `.run`
        # when the receiver looks like a simulator/controller handle.
        receiver = node.func.value  # type: ignore[union-attr]
        return isinstance(receiver, ast.Name) and bool(_SIM_RECEIVER_RE.search(receiver.id))
    return False


class NotifyBeforeReadRule(Rule):
    id = "notify-before-read"
    severity = Severity.WARNING
    description = (
        "loops that advance time and re-read files each iteration are "
        "polling; subscribe with watch()/inotify_add_watch() and let §3.3 "
        "notification delivery wake the reader instead"
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        if "app" not in src.scopes and "example" not in src.scopes:
            return
        for func in ast.walk(src.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if any(_attr_call(node) in _SUBSCRIBE_ATTRS for node in ast.walk(func)):
                continue
            for loop in ast.walk(func):
                if not isinstance(loop, (ast.While, ast.For)):
                    continue
                reads = [n for n in ast.walk(loop) if _attr_call(n) in _READ_ATTRS]
                advances = any(_advances_time(n) for n in ast.walk(loop))
                if not reads or not advances:
                    continue
                yield self.finding(
                    src,
                    loop,
                    f"{func.name}() polls: this loop advances time and re-reads "
                    f"{_attr_call(reads[0])}() each pass with no watch()/"
                    "inotify_add_watch() subscription — use notification "
                    "delivery (§3.3) so the reader wakes only on change",
                )


register(NotifyBeforeReadRule())
