"""Calibration: the static cost model vs. live SyscallMeter counts.

``yancperf --calibrate`` boots the quickstart topology (three switches,
one host each), runs a handful of representative operations under fresh
:class:`~repro.perf.meter.SyscallMeter` contexts, and checks each one
against the statically-derived polynomial evaluated at the workload's
actual loop multiplicity ``n``.

The contract is one-sided by design: the model is an *upper bound*
(every branch assumed taken, one shared ``n`` across a function's
loops), so overestimation is expected — but a **live count above the
static bound means the model lost track of a metered operation** on
that path, and the run fails.  A zero static bound for a function that
demonstrably issues syscalls fails for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CalibrationRow:
    """One scenario's static-vs-live comparison."""

    function: str
    n: int  # the workload's actual loop multiplicity
    static: str  # rendered cost polynomial
    bound: int  # the polynomial evaluated at n
    live: int  # syscalls the SyscallMeter actually counted
    ok: bool
    note: str = ""

    def to_json(self) -> dict:
        return {
            "function": self.function,
            "n": self.n,
            "static": self.static,
            "bound": self.bound,
            "live": self.live,
            "ok": self.ok,
            "note": self.note,
        }


def run_calibration(paths: list[str]) -> list[CalibrationRow]:
    """Boot the quickstart topology and cross-check four hot functions."""
    from repro import FLOOD, Match, Output, YancController, build_linear
    from repro.analysis.loader import load_files
    from repro.analysis.yancperf.model import CostIndex
    from repro.perf.meter import SyscallMeter
    from repro.shell import Shell
    from repro.yancfs.client import YancClient

    sources, _findings = load_files(paths)
    index = CostIndex(sources)

    net = build_linear(3, hosts_per_switch=1)
    ctl = YancController(net).start()
    #: Setup traffic (staging flows, filling event buffers) rides a
    #: throwaway meter so only the measured call is billed.
    quiet = YancClient(ctl.host.root_sc.spawn(meter=SyscallMeter()))

    rows: list[CalibrationRow] = []

    def measure(class_name: str | None, func_name: str, scenario) -> None:
        qualname = f"{class_name}.{func_name}" if class_name else func_name
        decl = index.find(class_name, func_name)
        if decl is None:
            rows.append(
                CalibrationRow(qualname, 0, "?", 0, 0, False, "not in analyzed tree")
            )
            return
        cost = index.cost(decl)
        meter = SyscallMeter()
        sc = ctl.host.root_sc.spawn(meter=meter)
        before = meter.syscalls
        n = scenario(sc)
        live = meter.syscalls - before
        bound = cost.evaluate(max(n, 1))
        ok = bound > 0 and live <= bound
        note = "" if ok else ("static bound is zero" if bound <= 0 else "live exceeds static bound")
        rows.append(CalibrationRow(qualname, n, cost.render(), bound, live, ok, note))

    def create_flow(sc) -> int:
        match = Match(dl_type=0x0800)
        actions = [Output(FLOOD)]
        YancClient(sc).create_flow("sw1", "cal_flow", match, actions, priority=7)
        return max(len(match.to_files()), len(actions))

    def read_flow(sc) -> int:
        quiet.create_flow("sw2", "cal_rf", Match(dl_type=0x0800, nw_proto=6), [Output(FLOOD)], priority=5)
        YancClient(sc).read_flow("sw2", "cal_rf")
        return len(quiet.sc.listdir(quiet.flow_path("sw2", "cal_rf")))

    def read_events(sc) -> int:
        quiet.subscribe_events("sw3", "calapp")
        for seq in range(3):
            quiet.write_packet_in(
                "sw3", "calapp", seq, in_port=1, reason="no_match",
                buffer_id=seq, total_len=4, data=b"ping",
            )
        return len(YancClient(sc).read_events("sw3", "calapp"))

    def cmd_ls(sc) -> int:
        Shell(sc).cmd_ls(["-l", "/net/switches"])
        return len(quiet.sc.listdir("/net/switches"))

    measure("YancClient", "create_flow", create_flow)
    measure("YancClient", "read_flow", read_flow)
    measure("YancClient", "read_events", read_events)
    measure("Shell", "cmd_ls", cmd_ls)
    return rows


def render_calibration(rows: list[CalibrationRow]) -> str:
    """Text table, one scenario per line, with the pass/fail verdict."""
    failed = [row for row in rows if not row.ok]
    lines = [
        "yancperf calibration: static upper bound vs. live SyscallMeter counts"
    ]
    name_width = max((len(row.function) for row in rows), default=8)
    static_width = max((len(row.static) for row in rows), default=6)
    lines.append(
        f"{'function':<{name_width}}  {'n':>3}  {'static':<{static_width}}  "
        f"{'bound':>6}  {'live':>6}  verdict"
    )
    for row in rows:
        verdict = "ok" if row.ok else f"FAIL ({row.note})"
        lines.append(
            f"{row.function:<{name_width}}  {row.n:>3}  {row.static:<{static_width}}  "
            f"{row.bound:>6}  {row.live:>6}  {verdict}"
        )
    lines.append(
        f"yancperf: {len(rows) - len(failed)}/{len(rows)} scenario(s) within the static bound"
    )
    return "\n".join(lines)


__all__ = ["CalibrationRow", "render_calibration", "run_calibration"]
