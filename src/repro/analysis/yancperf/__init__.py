"""yancperf: interprocedural syscall-cost analysis over the shared
yancpath abstract interpreter.

Three front doors:

* :func:`analyze_yancperf` — the five amplification finding kinds
  (``syscall-in-loop``, ``path-reresolve``, ``linear-table-scan``,
  ``chatty-rpc``, ``readdir-then-stat``);
* :func:`~repro.analysis.yancperf.report.cost_report` — the ranked
  per-function cost table;
* :func:`~repro.analysis.yancperf.calibrate.run_calibration` — static
  bound vs. live :class:`~repro.perf.meter.SyscallMeter` counts.
"""

from repro.analysis.yancperf.checker import KINDS, STORM_THRESHOLD, analyze_yancperf
from repro.analysis.yancperf.model import CostExpr, CostIndex, WEIGHTS

__all__ = [
    "KINDS",
    "STORM_THRESHOLD",
    "WEIGHTS",
    "CostExpr",
    "CostIndex",
    "analyze_yancperf",
]
