"""The yancperf syscall-cost model.

Every function's estimated cost is a small polynomial in ``n`` — the
(unknown) trip count of its loops — built from three inputs the shared
:class:`~repro.analysis.yancpath.interp.FuncInterp` pass records:

* **op sites** — every recognized metered ``Syscalls`` call, weighted by
  how many real syscalls the facade method issues (``read_text`` is
  open+read+close = 3, ``listdir`` is one getdents, ...), multiplied by
  ``n`` once per enclosing loop (``depth``);
* **rpc sites** — distfs ``channel.call`` round trips, weighted like a
  syscall (the network hop dwarfs it, but the *count* is what the model
  ranks by);
* **resolved calls** — a project-internal callee's whole polynomial is
  rolled up into the caller, shifted by the call site's loop depth
  (``helper()`` inside one loop turns its ``3 + 2n`` into ``3n + 2n²``).

The model is deliberately an **upper bound**: every branch is assumed
taken, every loop multiplies by the same ``n``, and bounded loops still
count as a degree.  Calibration (``--calibrate``) checks exactly that
contract against live :class:`~repro.perf.meter.SyscallMeter` counts —
the model may overestimate, but a live count above the static bound
means the model lost track of a hot path and the build fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.yancpath.interp import FuncDecl, FuncInterp, ProjectIndex

#: Real syscalls issued per facade method call (see vfs/syscalls.py).
WEIGHTS: dict[str, int] = {
    # fd-based
    "open": 1,
    "close": 1,
    "read": 1,
    "write": 1,
    "pread": 1,
    "pwrite": 1,
    "lseek": 1,
    "ftruncate": 1,
    "fstat": 1,
    # whole-file helpers decompose into open + read/write + close
    "read_text": 3,
    "read_bytes": 3,
    "write_text": 3,
    "write_bytes": 3,
    # path-based
    "chdir": 1,
    "mkdir": 1,
    "makedirs": 2,  # access + mkdir per missing component; ≥2 when it creates
    "rmdir": 1,
    "unlink": 1,
    "rename": 1,
    "symlink": 1,
    "readlink": 1,
    "link": 1,
    "stat": 1,
    "lstat": 1,
    "exists": 1,
    "listdir": 1,
    "scandir": 1,
    "truncate": 1,
    "chmod": 1,
    "chown": 1,
    "set_acl": 1,
    "setxattr": 1,
    "getxattr": 1,
    "listxattr": 1,
    "removexattr": 1,
    "mount": 1,
    "bind_mount": 1,
    "umount": 1,
    # notification / readiness
    "inotify_init": 1,
    "inotify_add_watch": 1,
    "inotify_read": 1,
    "epoll_create": 1,
    "epoll_ctl": 1,
    "epoll_wait": 1,
    "watch": 1,
    # one getdents per directory *visited* — billed per iteration (see below)
    "walk": 1,
    # batched submission (§8.1): setting up a ring and flushing it are one
    # crossing each, no matter how many entries the flush drains
    "io_uring_setup": 1,
    "submit": 1,
}

#: Methods that resolve a path on every call (the dcache round trip a held
#: fd would avoid).  Only these count toward the syscall-in-loop storm
#: weight: a loop doing fd-based reads on an already-open descriptor is
#: the remedy, not the disease.
PATH_RESOLVING: frozenset = frozenset(
    name
    for name in WEIGHTS
    if name
    not in {
        "close",
        "read",
        "write",
        "pread",
        "pwrite",
        "lseek",
        "ftruncate",
        "fstat",
        "inotify_init",
        "inotify_read",
        "epoll_create",
        "epoll_ctl",
        "epoll_wait",
        # ring crossings amortize path resolution — batching is the remedy
        # for a path storm, not an instance of one
        "io_uring_setup",
        "submit",
    }
)

#: Degrees above this collapse (n⁵ and n⁴ rank the same in practice).
MAX_DEGREE = 4


@dataclass
class CostExpr:
    """A polynomial in ``n``: ``coeffs[d]`` syscalls at loop depth ``d``."""

    coeffs: dict[int, int] = field(default_factory=dict)
    approx: bool = False  # a recursion or budget cut made this a floor

    @classmethod
    def zero(cls, approx: bool = False) -> "CostExpr":
        return cls(coeffs={}, approx=approx)

    @property
    def is_zero(self) -> bool:
        return not self.coeffs

    @property
    def degree(self) -> int:
        return max(self.coeffs, default=0)

    def add_term(self, degree: int, weight: int) -> None:
        if weight <= 0:
            return
        degree = min(degree, MAX_DEGREE)
        self.coeffs[degree] = self.coeffs.get(degree, 0) + weight

    def plus(self, other: "CostExpr") -> "CostExpr":
        out = CostExpr(coeffs=dict(self.coeffs), approx=self.approx or other.approx)
        for degree, weight in other.coeffs.items():
            out.add_term(degree, weight)
        return out

    def shifted(self, by: int) -> "CostExpr":
        """Multiply by ``n^by`` — the callee runs once per iteration."""
        out = CostExpr(approx=self.approx)
        for degree, weight in self.coeffs.items():
            out.add_term(degree + by, weight)
        return out

    def evaluate(self, n: int) -> int:
        return sum(weight * n**degree for degree, weight in self.coeffs.items())

    def render(self) -> str:
        if self.is_zero:
            return "~0" if self.approx else "0"
        parts = []
        for degree in sorted(self.coeffs, reverse=True):
            weight = self.coeffs[degree]
            if degree == 0:
                parts.append(str(weight))
            else:
                var = "n" if degree == 1 else f"n^{degree}"
                parts.append(var if weight == 1 else f"{weight}{var}")
        text = " + ".join(parts)
        return f"~{text}" if self.approx else text

    def sort_key(self) -> tuple:
        """Descending rank: degree first, then the polynomial at n=8."""
        return (self.degree, self.coeffs.get(self.degree, 0), self.evaluate(8))


class CostIndex:
    """Interpret every function once; memoize interprocedural cost rollups."""

    def __init__(self, sources):
        # The cost model needs no §3.4 role oracle — a null judge keeps the
        # shared interpreter from dragging the schema grammar in.
        self.index = ProjectIndex(list(sources), lambda tokens: None)
        self.decls: list[FuncDecl] = []
        self.interps: dict[int, FuncInterp] = {}
        self.module_interps: list[FuncInterp] = []
        for module in self.index.modules:
            top = FuncInterp(self.index, None, module=module)
            top.run()
            self.module_interps.append(top)
            for decl in module.functions:
                interp = FuncInterp(self.index, decl)
                interp.run()
                self.interps[id(decl.node)] = interp
                self.decls.append(decl)
        self._costs: dict[int, CostExpr] = {}
        self._rolled: dict[int, int] = {}
        self._in_progress: set[int] = set()

    def interp_of(self, decl: FuncDecl) -> FuncInterp:
        return self.interps[id(decl.node)]

    def find(self, class_name: str | None, func_name: str) -> FuncDecl | None:
        for decl in self.decls:
            if decl.name == func_name and decl.class_name == class_name:
                return decl
        return None

    @staticmethod
    def direct_cost(interp: FuncInterp) -> CostExpr:
        """The function's own metered operations, before callee rollup."""
        expr = CostExpr.zero()
        for op in interp.op_sites:
            weight = WEIGHTS.get(op.method, 0)
            # walk() yields one getdents per directory visited, so a loop
            # over it pays per iteration even though the call sits outside.
            depth = op.depth + 1 if op.method == "walk" else op.depth
            expr.add_term(depth, weight)
        for rpc in interp.rpc_sites:
            expr.add_term(rpc.depth, 1)
        return expr

    def cost(self, decl: FuncDecl) -> CostExpr:
        key = id(decl.node)
        cached = self._costs.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:
            return CostExpr.zero(approx=True)  # recursion: cost is a floor
        self._in_progress.add(key)
        try:
            interp = self.interp_of(decl)
            expr = self.direct_cost(interp)
            rolled = 0
            for call in interp.calls:
                callee_cost = self.cost(call.callee)
                if callee_cost.is_zero and not callee_cost.approx:
                    continue
                expr = expr.plus(callee_cost.shifted(call.depth))
                rolled += 1
        finally:
            self._in_progress.discard(key)
        self._costs[key] = expr
        self._rolled[key] = rolled
        return expr

    def rolled_callees(self, decl: FuncDecl) -> int:
        """How many resolved callees contributed to ``cost(decl)``."""
        self.cost(decl)
        return self._rolled.get(id(decl.node), 0)

    def per_iteration_weight(self, interp: FuncInterp, loop) -> int:
        """Estimated path-resolving syscalls per iteration of ``loop``.

        Direct sites inside the loop plus each resolved callee's whole
        cost at n=1 (its own loops assumed short — an under-, not
        over-estimate, so the storm threshold stays conservative).
        """
        weight = 0
        for op in interp.op_sites:
            if op.loop is loop and op.method in PATH_RESOLVING:
                weight += WEIGHTS.get(op.method, 0)
        for call in interp.calls:
            if call.loop is loop:
                weight += self.cost(call.callee).evaluate(1)
        return weight


__all__ = ["CostExpr", "CostIndex", "MAX_DEGREE", "PATH_RESOLVING", "WEIGHTS"]
