"""yancperf findings: syscall-amplification anti-patterns, judged per loop.

The five kinds, in claim order (a loop claimed by a more specific kind is
not re-reported by a more general one):

* ``readdir-then-stat`` — a ``stat``/``lstat`` of a per-entry path inside
  a loop over ``listdir()`` output; one ``scandir()`` batches names and
  metadata into a single syscall;
* ``chatty-rpc`` — a distfs ``channel.call`` round trip inside an
  unbounded loop; per-item RPCs should batch into one call;
* ``linear-table-scan`` — a packet/flow hot-path function iterating a
  full match-entry table or schema directory; the ROADMAP's indexed flow
  tables remove the scan;
* ``path-reresolve`` — the same abstract path resolved two or more times
  within one loop iteration (``exists`` + ``unlink``, read-modify-write);
  resolve once and hold the fd or dcache-pinned handle;
* ``syscall-in-loop`` — an unbounded loop whose body issues at least
  :data:`STORM_THRESHOLD` path-resolving syscalls per iteration
  (callee costs rolled up) with no held fd; the §8.1 N+1 storm shape.

All findings are warnings: they rank work, they do not assert bugs.
Suppressions are ``# yancperf: disable=<kind>`` comments (the yanclint
spelling works too — rule ids are unique across tools).
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.analysis.core import Finding, Severity, SourceFile
from repro.analysis.yancpath import patterns as P
from repro.analysis.yancpath.interp import FuncDecl, FuncInterp, loop_variant
from repro.analysis.yancperf.model import PATH_RESOLVING, CostIndex, WEIGHTS

KINDS = (
    "syscall-in-loop",
    "path-reresolve",
    "linear-table-scan",
    "chatty-rpc",
    "readdir-then-stat",
)

_SEVERITY = {kind: Severity.WARNING for kind in KINDS}

#: Minimum estimated path-resolving syscalls per iteration to call a storm.
STORM_THRESHOLD = 3

#: Function names that put a loop on the packet/flow hot path.
_HOT_NAME = re.compile(r"lookup|packet|frame|ingest|forward|route|classify|inject|recv")

_STAT_METHODS = frozenset({"stat", "lstat"})

_SCAN_KINDS = frozenset({"entries", "listdir", "walk"})


def analyze_yancperf(paths: list[str]) -> list[Finding]:
    """Run the cost analysis over files/directories ``paths``."""
    from repro.analysis.loader import load_files

    sources, findings = load_files(paths)
    findings.extend(analyze_sources(sources))
    findings.sort(key=Finding.sort_key)
    return findings


def analyze_sources(sources: Iterable[SourceFile]) -> list[Finding]:
    """Analyze already-parsed sources (the CLI adds loader findings)."""
    cost_index = CostIndex(sources)
    hot = _hot_decls(cost_index)
    out: list[Finding] = []
    for decl in cost_index.decls:
        _judge_interp(cost_index, cost_index.interp_of(decl), decl, id(decl.node) in hot, out)
    for interp in cost_index.module_interps:
        _judge_interp(cost_index, interp, None, False, out)
    return out


def _hot_decls(cost_index: CostIndex) -> set[int]:
    """``id(decl.node)`` of hot-named functions and all their callees."""
    edges: dict[int, list[FuncDecl]] = {}
    for decl in cost_index.decls:
        edges[id(decl.node)] = [c.callee for c in cost_index.interp_of(decl).calls]
    hot: set[int] = set()
    frontier = [d for d in cost_index.decls if _HOT_NAME.search(d.name)]
    while frontier:
        decl = frontier.pop()
        if id(decl.node) in hot:
            continue
        hot.add(id(decl.node))
        frontier.extend(edges.get(id(decl.node), ()))
    return hot


def _judge_interp(
    cost_index: CostIndex,
    interp: FuncInterp,
    decl: FuncDecl | None,
    is_hot: bool,
    out: list[Finding],
) -> None:
    src: SourceFile = (decl.module if decl is not None else interp.module).src
    emitted: set[tuple[int, int, str]] = set()

    def emit(kind: str, node, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        key = (line, col, kind)
        if key in emitted or src.is_suppressed(kind, line):
            return
        emitted.add(key)
        out.append(
            Finding(
                path=src.path,
                line=line,
                col=col,
                rule=kind,
                severity=_SEVERITY[kind],
                message=message,
            )
        )

    claimed_sites: set[int] = set()  # id(site.node) consumed by a specific kind
    claimed_loops: set[int] = set()  # id(loop.node) already reported

    # 1. readdir-then-stat: the scandir-shaped batching opportunity.
    for site in interp.sites:
        if (
            site.method in _STAT_METHODS
            and site.loop is not None
            and site.loop.kind == "listdir"
            and loop_variant(site.paths[0])
        ):
            emit(
                "readdir-then-stat",
                site.node,
                f"{site.method}() per directory entry after listdir(); "
                "one scandir() batches names and metadata into a single syscall",
            )
            claimed_sites.add(id(site.node))
            claimed_loops.add(id(site.loop.node))

    # 2. chatty-rpc: one network round trip per item.
    for rpc in interp.rpc_sites:
        if rpc.loop is not None and not rpc.loop.bounded:
            emit(
                "chatty-rpc",
                rpc.node,
                "distfs RPC round trip per loop iteration; "
                "batch the items into one call",
            )
            claimed_loops.add(id(rpc.loop.node))

    # 3. linear-table-scan: full-table iteration on a packet/flow hot path.
    if is_hot and decl is not None:
        for loop in interp.loops:
            if loop.bounded or id(loop.node) in claimed_loops:
                continue
            if loop.kind in _SCAN_KINDS:
                what = (
                    "match-entry table"
                    if loop.kind == "entries"
                    else "schema directory"
                )
                emit(
                    "linear-table-scan",
                    loop.node,
                    f"hot path {decl.name}() scans the full {what} per "
                    "lookup; an indexed table avoids the linear scan "
                    "(ROADMAP: indexed flow tables)",
                )
                claimed_loops.add(id(loop.node))

    # 4. path-reresolve: the same abstract path resolved repeatedly in one
    #    iteration (exists+unlink, read-modify-write on one file, ...).
    groups: dict[tuple[int, tuple], list] = {}
    for site in interp.sites:
        if site.loop is None or id(site.node) in claimed_sites:
            continue
        if site.method not in PATH_RESOLVING:
            continue
        for tokens in site.paths:
            if not any(t[0] == "text" for t in tokens):
                continue  # a pure hole carries no identity to re-resolve
            groups.setdefault((id(site.loop.node), tokens), []).append(site)
    for (_loop_id, tokens), sites in groups.items():
        distinct = {id(s.node): s for s in sites}
        if len(distinct) < 2:
            continue
        ordered = sorted(
            distinct.values(), key=lambda s: (s.node.lineno, s.node.col_offset)
        )
        pattern = P.finalize(tokens)
        rendered = pattern.render() if pattern is not None else "<path>"
        emit(
            "path-reresolve",
            ordered[1].node,
            f"path {rendered!r} is resolved {len(distinct)} times per loop "
            "iteration; resolve once and hold the fd or dcache-pinned handle",
        )
        for site in ordered:
            claimed_sites.add(id(site.node))
        claimed_loops.add(_loop_id)

    # 5. syscall-in-loop: the general N+1 storm, for loops nothing more
    #    specific has already explained.
    for loop in interp.loops:
        if loop.bounded or id(loop.node) in claimed_loops:
            continue
        weight = cost_index.per_iteration_weight(interp, loop)
        if weight >= STORM_THRESHOLD:
            emit(
                "syscall-in-loop",
                loop.node,
                f"loop issues ~{weight} metered syscalls per iteration "
                "(callee costs included) with no held fd; batch, cache, "
                "or hoist the resolution (§8.1 syscall tax)",
            )
            claimed_loops.add(id(loop.node))


__all__ = ["KINDS", "STORM_THRESHOLD", "analyze_sources", "analyze_yancperf"]
