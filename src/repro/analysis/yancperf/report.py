"""The ranked per-function cost table (``yancperf --report``).

Ranks every analyzed function by its interprocedural cost polynomial —
highest degree first, then the leading coefficient — so the top of the
table is literally the work list for the ROADMAP's batched-syscall ring
(item 1) and indexed flow tables (item 3): the functions whose syscall
bill grows fastest with topology size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.yancperf.model import CostExpr, CostIndex


@dataclass
class CostRow:
    """One ranked function."""

    name: str  # Class.method or bare function name
    path: str
    line: int
    cost: CostExpr
    rolled: int  # resolved callees whose cost was rolled in

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "path": self.path,
            "line": self.line,
            "cost": self.cost.render(),
            "degree": self.cost.degree,
            "at_n8": self.cost.evaluate(8),
            "rolled_callees": self.rolled,
        }


def cost_report(paths: list[str]) -> list[CostRow]:
    """Every function with a nonzero cost, most expensive first."""
    from repro.analysis.loader import load_files

    sources, _findings = load_files(paths)
    index = CostIndex(sources)
    rows = []
    for decl in index.decls:
        cost = index.cost(decl)
        if cost.is_zero and not cost.approx:
            continue
        name = f"{decl.class_name}.{decl.name}" if decl.class_name else decl.name
        rows.append(
            CostRow(
                name=name,
                path=decl.module.src.path,
                line=decl.node.lineno,
                cost=cost,
                rolled=index.rolled_callees(decl),
            )
        )
    rows.sort(key=lambda row: row.cost.sort_key(), reverse=True)
    return rows


def render_report(rows: list[CostRow], top: int | None = None) -> str:
    """Text table; ``top`` limits the rows shown (the count line does not lie)."""
    shown = rows if top is None else rows[:top]
    lines = [
        f"yancperf report: {len(rows)} function(s) with estimated syscall cost"
        + (f" (top {len(shown)} shown)" if len(shown) < len(rows) else "")
    ]
    if not shown:
        return lines[0]
    width = max(len(row.cost.render()) for row in shown)
    name_width = max(len(row.name) for row in shown)
    lines.append(f"{'rank':>4}  {'cost/call':<{width}}  {'callees':>7}  {'function':<{name_width}}  site")
    for rank, row in enumerate(shown, start=1):
        lines.append(
            f"{rank:>4}  {row.cost.render():<{width}}  {row.rolled:>7}  "
            f"{row.name:<{name_width}}  {row.path}:{row.line}"
        )
    return "\n".join(lines)


__all__ = ["CostRow", "cost_report", "render_report"]
