"""Static analysis (yanclint) and runtime sanitizing (yancsan) for the repo.

The paper's architecture stands on one discipline: *all* network state is
reached through file I/O on the yanc tree, and the substrate underneath is
deterministic.  Nothing in Python enforces either property — an app can
import driver internals, a daemon can read the wall clock — so this package
makes the discipline machine-checked:

* **yanclint** (:mod:`repro.analysis.runner`, ``python -m repro.analysis``)
  is an AST-based linter with repo-specific rules: determinism (no wall
  clock, no unseeded randomness), vfs-bypass (apps/shell/examples touch the
  network only through ``Syscalls``/``YancClient``), error-discipline
  (typed :mod:`repro.vfs.errors` exceptions; no silent broad excepts),
  schema-validator-coverage (every yancfs attribute file has a validator),
  plus generic hygiene rules.

* **yancsan** (:mod:`repro.analysis.sanitizer`) is an opt-in runtime
  sanitizer (``YANCSAN=1``) wrapping the VFS to catch fd leaks, writes that
  dodge close-time validation, notify events inconsistent with the
  mutations that produced them, and flow-commit protocol violations.

* **yancrace** (:mod:`repro.analysis.race`) is an opt-in happens-before
  race detector (``YANCRACE=1``, or ``python -m repro.analysis race
  workload.py``): every process is a vector-clocked actor, ordering edges
  come from the substrate's real sync points (notify delivery, §3.4
  version commits, rename publication, scheduling, RPC, simulator
  quiescence), and unsynchronized conflicting accesses — plus torn or
  concurrently-read flow commits — are reported with PIDs and syscall
  sites.
"""

from __future__ import annotations

from repro.analysis.core import Finding, Rule, Severity, SourceFile, all_rules
from repro.analysis.runner import analyze_paths, format_findings

__all__ = [
    "Finding",
    "Rule",
    "Severity",
    "SourceFile",
    "all_rules",
    "analyze_paths",
    "format_findings",
]
