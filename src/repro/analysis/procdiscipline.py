"""Rule ``proc-discipline``: apps and drivers schedule through their Process.

The process runtime (:mod:`repro.proc.process`) is the only sanctioned
path from application-side code to the simulator: ``Process.every`` and
``Process.schedule`` wrap the callback in crash containment (a raising
handler crashes *that process*, never the whole run), stop it with the
process, and charge the scheduled CPU to the process's cgroup.  Calling
``sim.schedule``/``sim.schedule_at``/``sim.every`` directly from an app
or driver sidesteps all three — the duplicated wakeup plumbing this PR
deleted grew exactly that way.

Scopes: ``app`` (``src/repro/apps``, ``src/repro/shell``) and ``driver``
(``src/repro/drivers``, ``src/repro/middlebox``, ``src/repro/distfs``).
Infrastructure that legitimately owns raw simulator time — the dataplane,
control channels, the process runtime itself — is outside both.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, Severity, SourceFile, register

_SCHEDULING_ATTRS = {"schedule", "schedule_at", "every"}


def _simulator_receiver(func: ast.Attribute) -> str | None:
    """The dotted receiver text when it looks like a Simulator, else None."""
    receiver = func.value
    if isinstance(receiver, ast.Name) and receiver.id.lstrip("_").endswith("sim"):
        return receiver.id
    if isinstance(receiver, ast.Attribute) and receiver.attr.lstrip("_").endswith("sim"):
        prefix = receiver.value.id + "." if isinstance(receiver.value, ast.Name) else ""
        return prefix + receiver.attr
    return None


class ProcDisciplineRule(Rule):
    id = "proc-discipline"
    severity = Severity.ERROR
    description = (
        "apps/ and drivers/ must not call sim.schedule/sim.every directly; "
        "use the Process helpers (every/schedule) so work is crash-contained, "
        "stops with the process, and bills its cgroup"
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        if "app" not in src.scopes and "driver" not in src.scopes:
            return
        for node in ast.walk(src.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr not in _SCHEDULING_ATTRS:
                continue
            receiver = _simulator_receiver(node.func)
            if receiver is not None:
                yield self.finding(
                    src,
                    node,
                    f"{receiver}.{node.func.attr}() schedules on the simulator directly, skipping crash "
                    "containment and cgroup accounting; use the Process helpers (self.every/self.schedule)",
                )


register(ProcDisciplineRule())
