"""yanclint file collection and parsing.

Directories are walked recursively for ``*.py`` files; ``__pycache__``,
hidden directories, and ``fixtures`` directories are skipped (fixture files
hold deliberately-bad code and are only analyzed when named explicitly on
the command line, which always wins over the skip list).
"""

from __future__ import annotations

import os
from typing import Iterator

from repro.analysis.core import Finding, Severity, SourceFile

_SKIP_DIRS = {"__pycache__", "fixtures", ".git", ".hg", "node_modules"}


def collect_files(paths: list[str]) -> tuple[list[str], list[Finding]]:
    """Expand files and directories into a sorted list of .py paths.

    Paths that do not exist become findings rather than silent no-ops —
    a typo'd path must not report "clean"."""
    out: list[str] = []
    missing: list[Finding] = []
    seen: set[str] = set()

    def add(path: str) -> None:
        norm = os.path.normpath(path)
        if norm not in seen:
            seen.add(norm)
            out.append(norm)

    for path in paths:
        if os.path.isfile(path):
            add(path)  # explicit files are always analyzed, even fixtures
            continue
        if not os.path.isdir(path):
            missing.append(
                Finding(path=path, line=1, col=1, rule="usage", severity=Severity.ERROR, message="no such file or directory")
            )
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS and not d.startswith("."))
            for name in sorted(filenames):
                if name.endswith(".py"):
                    add(os.path.join(dirpath, name))
    return out, missing


def load_files(paths: list[str]) -> tuple[list[SourceFile], list[Finding]]:
    """Parse every collected file; unparseable ones become findings."""
    sources: list[SourceFile] = []
    files, findings = collect_files(paths)
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                text = fh.read()
            sources.append(SourceFile.parse(path, text))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    rule="parse-error",
                    severity=Severity.ERROR,
                    message=f"cannot parse: {exc.msg}",
                )
            )
    return sources, findings


def iter_sources(paths: list[str]) -> Iterator[SourceFile]:
    """Convenience wrapper discarding parse errors (used by tests)."""
    sources, _ = load_files(paths)
    return iter(sources)
