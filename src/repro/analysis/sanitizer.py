"""yancsan: an opt-in runtime sanitizer for the VFS and yanc tree.

Where yanclint checks source, yancsan checks *executions*.  When enabled
(``YANCSAN=1`` in the environment, or an explicit :func:`install`), it
wraps the small number of choke points everything flows through —
``Syscalls.open``/``close``, ``FileInode.set_content``,
``FileHandle.close``, ``NotifyHub.emit_dirent`` — and records invariant
violations instead of raising, so a whole test runs to completion and
reports every finding at teardown:

* **fd-leak** — descriptors opened through a ``Syscalls`` instance and
  never closed.  Close is where attribute validation happens, so a leaked
  writable handle is also a validation hole.
* **unvalidated-write** — an :class:`AttributeFile` mutated via
  ``set_content`` with content its validator rejects (direct-store paths
  bypass close-time validation; ``libyanc.fastpath`` validates explicitly
  and this check keeps everyone else honest).
* **notify-inconsistency** — a directory-entry event whose mask
  contradicts tree state (IN_CREATE for an absent child, IN_DELETE for a
  present one) or an IN_MOVED_FROM/IN_MOVED_TO cookie with only one half.
* **flow-commit** — the §3.4 commit protocol: mutating a committed flow's
  spec files without a subsequent ``version`` increment means the change
  never reaches the switch; decreasing ``version`` breaks the protocol
  outright.

Usage::

    YANCSAN=1 python -m pytest        # conftest wires teardown checks

or programmatically::

    san = Sanitizer()
    san.install()
    try:
        ...
        assert san.check() == []
    finally:
        san.uninstall()
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.vfs.errors import InvalidArgument
from repro.vfs.inode import DirInode, FileInode
from repro.vfs.notify import EventMask, NotifyHub
from repro.vfs.syscalls import Syscalls
from repro.vfs.vfs import FileHandle
from repro.yancfs.schema import AttributeFile, FlowNode

#: Flow spec files whose mutation requires a version bump to take effect.
_FLOW_SPEC_NAMES = {"priority", "timeout", "idle_timeout", "hard_timeout", "cookie"}


@dataclass(frozen=True)
class SanFinding:
    """One runtime invariant violation."""

    kind: str
    detail: str

    def __str__(self) -> str:
        return f"yancsan [{self.kind}] {self.detail}"


@dataclass
class _PendingCommit:
    flow: FlowNode
    version_at_mutation: int
    detail: str


class Sanitizer:
    """Collects runtime findings between :meth:`reset` and :meth:`check`."""

    def __init__(self) -> None:
        self.findings: list[SanFinding] = []
        # (id(syscalls), fd) -> (path, handle); populated by the open hook.
        self._open_fds: dict[tuple[int, int], tuple[str, FileHandle]] = {}
        # id(flow node) -> last committed version value seen.
        self._versions: dict[int, int] = {}
        # id(flow node) -> mutation awaiting a version bump.
        self._pending: dict[int, _PendingCommit] = {}
        # rename cookie -> set of halves seen ("from"/"to").
        self._move_cookies: dict[int, set[str]] = {}

    # -- lifecycle -----------------------------------------------------------------

    def install(self) -> "Sanitizer":
        """Start observing; idempotent per sanitizer."""
        _patch_once()
        if self not in _SANITIZERS:
            _SANITIZERS.append(self)
        return self

    def uninstall(self) -> None:
        """Stop observing (the monkeypatches stay, but become no-ops)."""
        if self in _SANITIZERS:
            _SANITIZERS.remove(self)

    def reset(self) -> None:
        """Drop all recorded state, e.g. between tests."""
        self.findings.clear()
        self._open_fds.clear()
        self._versions.clear()
        self._pending.clear()
        self._move_cookies.clear()

    def check(self) -> list[SanFinding]:
        """Return all findings, including teardown-only ones (fd leaks,
        unpaired move cookies, uncommitted flow mutations)."""
        findings = list(self.findings)
        for (_, fd), (path, handle) in sorted(self._open_fds.items()):
            findings.append(SanFinding("fd-leak", f"fd {fd} open on {path!r} was never closed"))
            if handle.writable and isinstance(handle.inode, AttributeFile) and handle.inode.validator is not None:
                findings.append(
                    SanFinding(
                        "unvalidated-write",
                        f"writable fd {fd} on validated attribute {path!r} leaked: "
                        "its content was never validated at close",
                    )
                )
        for cookie, halves in sorted(self._move_cookies.items()):
            if halves != {"from", "to"}:
                only = next(iter(halves))
                findings.append(
                    SanFinding(
                        "notify-inconsistency",
                        f"rename cookie {cookie} emitted IN_MOVED_{only.upper()} without its pair",
                    )
                )
        for pending in self._pending.values():
            findings.append(SanFinding("flow-commit", pending.detail))
        return findings

    # -- hook callbacks ------------------------------------------------------------

    def _on_open(self, sc: Syscalls, fd: int, path: str) -> None:
        handle = sc._fds.get(fd)
        if handle is not None:
            self._open_fds[(id(sc), fd)] = (path, handle)

    def _on_close_fd(self, sc: Syscalls, fd: int) -> None:
        self._open_fds.pop((id(sc), fd), None)

    def _on_set_content(self, inode: FileInode, data: bytes) -> None:
        if not isinstance(inode, AttributeFile) or inode.validator is None:
            return
        if bytes(data) == inode._last_valid:
            return  # the close-time rollback path restores known-good content
        text = bytes(data).decode(errors="replace")
        try:
            inode.validator(text)
        except InvalidArgument as exc:
            self.findings.append(
                SanFinding(
                    "unvalidated-write",
                    f"set_content({text!r}) bypassed close-time validation and the "
                    f"validator rejects it: {exc.detail or exc}",
                )
            )
            return
        self._note_attribute_write(inode, text)

    def _on_close_write(self, handle: FileHandle) -> None:
        inode = handle.inode
        if isinstance(inode, AttributeFile):
            self._note_attribute_write(inode, inode.read_all().decode(errors="replace"))

    def _note_attribute_write(self, inode: AttributeFile, text: str) -> None:
        """Track the §3.4 commit protocol on flow attribute files."""
        for parent, name in list(inode.dentries):
            if not isinstance(parent, FlowNode):
                continue
            key = id(parent)
            if name == "version":
                if not text.strip():
                    # The O_TRUNC half of an open-truncate-write-close
                    # sequence (e.g. distfs write-through) — not a commit.
                    continue
                try:
                    new = int(text.strip(), 0)
                except ValueError:
                    continue  # unvalidated-write already covers garbage
                old = self._versions.get(key, 0)
                if new < old:
                    self.findings.append(
                        SanFinding(
                            "flow-commit",
                            f"flow version decreased {old} -> {new}; versions must only grow (§3.4)",
                        )
                    )
                elif new > old:
                    self._pending.pop(key, None)
                self._versions[key] = max(old, new)
            elif name in _FLOW_SPEC_NAMES or name.startswith(("match.", "action.")):
                version = self._current_version(parent)
                self._versions.setdefault(key, version)
                if version > 0 and key not in self._pending:
                    self._pending[key] = _PendingCommit(
                        flow=parent,
                        version_at_mutation=version,
                        detail=f"flow spec file {name!r} changed at version {version} "
                        "but 'version' was never incremented; the switch will not see it (§3.4)",
                    )

    def _on_emit_dirent(self, parent: object, child: object, mask: int, name: str, cookie: int) -> None:
        event = EventMask(mask)
        if isinstance(parent, DirInode):
            # Inspect the raw child map: has_child()/lookup() run policy
            # hooks (distfs proxies refresh over RPC) and a sanitizer must
            # never perturb the system it observes.
            present = parent._children.get(name) is child
            if event & (EventMask.IN_CREATE | EventMask.IN_MOVED_TO) and not present:
                self.findings.append(
                    SanFinding(
                        "notify-inconsistency",
                        f"{self._mask_name(event)} for {name!r} but the directory has no such child",
                    )
                )
            if event & (EventMask.IN_DELETE | EventMask.IN_MOVED_FROM) and parent._children.get(name) is not None:
                self.findings.append(
                    SanFinding(
                        "notify-inconsistency",
                        f"{self._mask_name(event)} for {name!r} but the child is still attached",
                    )
                )
        if cookie:
            halves = self._move_cookies.setdefault(cookie, set())
            if event & EventMask.IN_MOVED_FROM:
                halves.add("from")
            if event & EventMask.IN_MOVED_TO:
                halves.add("to")

    @staticmethod
    def _mask_name(event: EventMask) -> str:
        for flag in (EventMask.IN_CREATE, EventMask.IN_DELETE, EventMask.IN_MOVED_FROM, EventMask.IN_MOVED_TO):
            if event & flag:
                return flag.name or str(flag)
        return str(event)

    @staticmethod
    def _current_version(flow: FlowNode) -> int:
        node = flow._children.get("version")
        if not isinstance(node, FileInode):
            return 0
        try:
            return int(node.read_all().decode(errors="replace").strip() or "0", 0)
        except ValueError:
            return 0


# -- module-level patching ------------------------------------------------------

#: Active sanitizers; the patched choke points fan out to each of these.
_SANITIZERS: list[Sanitizer] = []
_patched = False


def _patch_once() -> None:
    global _patched
    if _patched:
        return
    _patched = True

    orig_open = Syscalls.open
    orig_close = Syscalls.close
    orig_set_content = FileInode.set_content
    orig_handle_close = FileHandle.close
    orig_emit_dirent = NotifyHub.emit_dirent

    def patched_open(self: Syscalls, path: str, *args: object, **kwargs: object) -> int:
        fd = orig_open(self, path, *args, **kwargs)
        for san in _SANITIZERS:
            san._on_open(self, fd, path)
        return fd

    def patched_close(self: Syscalls, fd: int) -> None:
        try:
            orig_close(self, fd)
        finally:
            # Syscalls.close drops the fd before handle.close(), so the
            # descriptor is gone even when close-time validation raises.
            for san in _SANITIZERS:
                san._on_close_fd(self, fd)

    def patched_set_content(self: FileInode, data: bytes) -> None:
        for san in _SANITIZERS:
            san._on_set_content(self, data)
        orig_set_content(self, data)

    def patched_handle_close(self: FileHandle) -> None:
        was_open_writable = not self.closed and self.writable
        orig_handle_close(self)
        if was_open_writable:
            for san in _SANITIZERS:
                san._on_close_write(self)

    def patched_emit_dirent(self: NotifyHub, parent: object, child: object, mask: int, name: str, cookie: int = 0) -> None:
        for san in _SANITIZERS:
            san._on_emit_dirent(parent, child, mask, name, cookie)
        orig_emit_dirent(self, parent, child, mask, name, cookie=cookie)

    Syscalls.open = patched_open  # type: ignore[method-assign]
    Syscalls.close = patched_close  # type: ignore[method-assign]
    FileInode.set_content = patched_set_content  # type: ignore[method-assign]
    FileHandle.close = patched_handle_close  # type: ignore[method-assign]
    NotifyHub.emit_dirent = patched_emit_dirent  # type: ignore[method-assign]


# -- environment opt-in ---------------------------------------------------------

_env_sanitizer: Sanitizer | None = None


def enabled() -> bool:
    """True when the YANCSAN environment variable requests the sanitizer."""
    return os.environ.get("YANCSAN", "") not in ("", "0")


def install_from_env() -> Sanitizer | None:
    """Install the process-wide sanitizer if YANCSAN is set; idempotent."""
    global _env_sanitizer
    if not enabled():
        return None
    if _env_sanitizer is None:
        _env_sanitizer = Sanitizer().install()
    return _env_sanitizer


def active() -> Sanitizer | None:
    """The environment-installed sanitizer, if any."""
    return _env_sanitizer


def reset_all() -> None:
    """Reset every active sanitizer (test-isolation helper)."""
    for san in _SANITIZERS:
        san.reset()
