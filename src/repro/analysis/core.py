"""yanclint core: findings, rules, source files, and suppressions.

A rule examines one :class:`SourceFile` (or, for cross-module rules, the
whole project) and yields :class:`Finding` records.  Suppressions are
in-source comments:

* ``# yanclint: disable=<rule>[,<rule>...]`` on the flagged line silences
  those rules for that line (``disable=all`` silences everything); the
  comment may also sit on a decorator line (it applies to the decorated
  ``def``) or on any later line of a multi-line statement (it applies to
  the statement's first line, where findings anchor);
* ``# yanclint: disable-file=<rule>`` anywhere silences a rule for the
  whole file;
* ``# yanclint: scope=<app|driver|example|vfs|clock>`` declares the file's
  scope explicitly, overriding the path-derived default (used by test
  fixtures that live outside the real ``apps/``/``vfs/`` trees).

Disable comments accept any registered tool prefix — rule ids are
unique across the analysis tools, so every spelling addresses one shared
suppression set and each tool only ever consults its own ids.  A new
tool opts in with one :func:`register_suppression_tool` call instead of
editing the regexes here.
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator

#: Tool prefixes whose ``# <tool>: disable=...`` comments are honoured.
#: ``yanclint`` and ``yancperf`` ship registered (yancpath reuses the
#: ``yanclint`` spelling); ``yancrace``/``yanccrash`` register themselves
#: on import of their modules.
_SUPPRESSION_TOOLS: set[str] = {"yanclint", "yancperf"}

_DISABLE_RE: re.Pattern
_DISABLE_FILE_RE: re.Pattern


def _rebuild_suppression_patterns() -> None:
    alternation = "|".join(sorted(_SUPPRESSION_TOOLS))
    global _DISABLE_RE, _DISABLE_FILE_RE
    _DISABLE_RE = re.compile(rf"#\s*(?:{alternation}):\s*disable=([\w,\-]+)")
    _DISABLE_FILE_RE = re.compile(rf"#\s*(?:{alternation}):\s*disable-file=([\w,\-]+)")


def register_suppression_tool(name: str) -> str:
    """Honour ``# <name>: disable=...`` comments; idempotent.

    Call this once at tool-module import time, before any
    :class:`SourceFile` the tool will consult is parsed.
    """
    if not re.fullmatch(r"[\w\-]+", name):
        raise ValueError(f"bad suppression tool name {name!r}")
    if name not in _SUPPRESSION_TOOLS:
        _SUPPRESSION_TOOLS.add(name)
        _rebuild_suppression_patterns()
    return name


def comment_suppresses(line: str, kind: str) -> bool:
    """True when a source ``line``'s disable comment covers ``kind``.

    The line-oriented entry point for runtime tools (yancrace) that look
    sites up through ``linecache`` instead of parsing a whole
    :class:`SourceFile`.
    """
    for match in _DISABLE_RE.finditer(line):
        kinds = set(match.group(1).split(","))
        if "all" in kinds or kind in kinds:
            return True
    return False


_rebuild_suppression_patterns()

_SCOPE_RE = re.compile(r"#\s*yanclint:\s*scope=([\w\-]+)")

#: Compound statements: their bodies are *other* statements' lines, so a
#: disable inside the body must not bubble up to the header.
_COMPOUND_STMTS = tuple(
    getattr(ast, name)
    for name in (
        "FunctionDef",
        "AsyncFunctionDef",
        "ClassDef",
        "If",
        "For",
        "AsyncFor",
        "While",
        "With",
        "AsyncWith",
        "Try",
        "TryStar",
        "Match",
    )
    if hasattr(ast, name)
)


class Severity(enum.IntEnum):
    """Finding severity; the CLI exit code trips at WARNING and above."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        """Lower-case name for diagnostics."""
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One diagnostic: ``path:line:col: severity [rule] message``."""

    path: str
    line: int
    col: int
    rule: str
    severity: Severity
    message: str

    def format(self) -> str:
        """Render the canonical single-line diagnostic."""
        return f"{self.path}:{self.line}:{self.col}: {self.severity.label} [{self.rule}] {self.message}"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)


@dataclass
class SourceFile:
    """A parsed module plus everything rules need to judge it."""

    path: str
    text: str
    tree: ast.Module
    scopes: set[str] = field(default_factory=set)
    line_disables: dict[int, set[str]] = field(default_factory=dict)
    file_disables: set[str] = field(default_factory=set)

    @classmethod
    def parse(cls, path: str, text: str) -> "SourceFile":
        """Parse ``text``; raises SyntaxError for the loader to report."""
        tree = ast.parse(text, filename=path)
        src = cls(path=path, text=text, tree=tree)
        src._scan_comments()
        src._propagate_disables()
        src.scopes |= scopes_from_path(path)
        return src

    def _scan_comments(self) -> None:
        for lineno, line in enumerate(self.text.splitlines(), start=1):
            if "#" not in line:
                continue
            for match in _DISABLE_RE.finditer(line):
                self.line_disables.setdefault(lineno, set()).update(match.group(1).split(","))
            for match in _DISABLE_FILE_RE.finditer(line):
                self.file_disables.update(match.group(1).split(","))
            for match in _SCOPE_RE.finditer(line):
                self.scopes.add(match.group(1))

    def _propagate_disables(self) -> None:
        """Attach disables written on secondary lines to the anchor line.

        Findings anchor at a statement's *first* line (the ``def`` line of
        a decorated function, the opening line of a multi-line call) — but
        the natural place to write the comment is often a decorator line
        or the closing line of the statement.  Copy those onto the anchor.
        """
        if not self.line_disables:
            return
        extra: dict[int, set[str]] = {}
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.stmt):
                continue
            anchor = node.lineno
            span: set[int] = set()
            for deco in getattr(node, "decorator_list", ()):
                span.update(range(deco.lineno, anchor))
            if not isinstance(node, _COMPOUND_STMTS):
                span.update(range(anchor + 1, (node.end_lineno or anchor) + 1))
            for lineno in span:
                rules = self.line_disables.get(lineno)
                if rules:
                    extra.setdefault(anchor, set()).update(rules)
        for anchor, rules in extra.items():
            self.line_disables.setdefault(anchor, set()).update(rules)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True when ``rule`` is disabled for ``line`` (or the whole file)."""
        if "all" in self.file_disables or rule in self.file_disables:
            return True
        disabled = self.line_disables.get(line, ())
        return "all" in disabled or rule in disabled


def scopes_from_path(path: str) -> set[str]:
    """Derive rule scopes from where a file lives.

    * ``app``     — application-side code (src ``apps/`` and ``shell/``):
      may only reach the network through file I/O;
    * ``driver``  — device-facing daemons (``drivers/``, ``middlebox/``,
      ``distfs/``): run as processes; scheduling goes through Process;
    * ``example`` — ``examples/`` scripts: may build the simulated hardware
      but must not bypass the file interface to *control* it;
    * ``vfs``     — ``vfs/`` and ``yancfs/``: raises must be typed;
    * ``clock``   — ``sim/clock.py``: the one legitimate time source.

    Paths under a ``tests`` or ``fixtures`` segment get no implicit scope
    (fixtures opt in with ``# yanclint: scope=...``).
    """
    parts = path.replace("\\", "/").split("/")
    segments = [p for p in parts if p not in ("", ".")]
    if "tests" in segments or "fixtures" in segments:
        return set()
    scopes: set[str] = set()
    if "apps" in segments or "shell" in segments:
        scopes.add("app")
    if "drivers" in segments or "middlebox" in segments or "distfs" in segments:
        scopes.add("driver")
    if "examples" in segments:
        scopes.add("example")
    if "vfs" in segments or "yancfs" in segments:
        scopes.add("vfs")
    if len(segments) >= 2 and segments[-2] == "sim" and segments[-1] == "clock.py":
        scopes.add("clock")
    return scopes


class Rule:
    """Base class: one per-file check.

    Subclasses set ``id``, ``severity``, ``description`` and implement
    :meth:`check`.  Cross-module rules subclass :class:`ProjectRule`.
    """

    id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def check(self, src: SourceFile) -> Iterator[Finding]:
        """Yield findings for one source file."""
        raise NotImplementedError

    def finding(self, src: SourceFile, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            path=src.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            severity=self.severity,
            message=message,
        )


class ProjectRule(Rule):
    """A rule that judges the project as a whole, not one file."""

    def check(self, src: SourceFile) -> Iterator[Finding]:
        return iter(())

    def check_project(self, files: Iterable[SourceFile]) -> Iterator[Finding]:
        """Yield findings spanning modules."""
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    """Add a rule instance to the global registry (id must be unique)."""
    if not rule.id:
        raise ValueError("rule needs an id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule


def all_rules() -> dict[str, Rule]:
    """The registry, importing the built-in rule modules on first use."""
    # Imported lazily so `core` stays dependency-free for the sanitizer.
    from repro.analysis import (  # noqa: F401
        determinism,
        errordiscipline,
        hygiene,
        notifyread,
        procdiscipline,
        schemacoverage,
        sharedwrite,
        vfsbypass,
    )

    return dict(_REGISTRY)
