"""The crash-point model checker: replay every crash prefix, assert recovery.

Takes the durable-op trace a :class:`~repro.analysis.yanccrash.recorder.CrashRecorder`
captured and exhaustively enumerates *crash points*: for every prefix of
the trace (each one a legal "power failed here" state, including cuts
inside an ``IoUring.submit`` dispatch — a mid-chain sever) it maintains
an incrementally replayed file tree, reconstructs the post-crash state,
runs the real :func:`repro.yancfs.recovery.fsck` in dry-run mode, and
asserts the §3.4/§3.5 invariants:

* **leaked-dot-entry** — a dot-entry present at the crash point that the
  recovery sweep would *not* remove (mount-time fsck is incomplete);
* **unswept-torn-flow** — a flow directory whose version is still 0 at
  the crash point but which recovery would leave behind;
* **version-regression** — a replayed write moved a flow's ``version``
  backwards (versions only grow, §3.4);
* **torn-publication** — a maildir-published entry (events spool, or any
  entry outside the yanc mounts) whose content at a later crash point
  differs from what the atomic ``rename()`` published;
* **spec-after-commit** — a spec write to an already-committed flow with
  no later version increment anywhere in the trace: every crash point
  after it exposes modified spec state under a stale version.

Write-behind ``flush()`` windows get extra states beyond prefixes: the
contract orders commits per flow but not across flows, so every subset
of a window's per-flow commits is a legal crash state; the explorer
replays each (bounded by ``max_window_states``, truncation reported).

The replay tree is rebuilt from nothing — fresh kernel, fresh
:class:`~repro.yancfs.schema.YancFs` per recorded mount — so the checks
exercise exactly what a restarted controller would find on disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.yanccrash.recorder import DurableOp
from repro.vfs.errors import FsError
from repro.vfs.stat import FileType
from repro.vfs.syscalls import Syscalls
from repro.vfs.vfs import VirtualFileSystem
from repro.yancfs.recovery import flow_version, fsck
from repro.yancfs.schema import YancFs

#: Per-flush-window cap on explored commit subsets (2^n grows fast).
DEFAULT_MAX_WINDOW_STATES = 256

#: Spec files the §3.4 commit covers exclude driver acks and counters.
_NON_SPEC_PREFIXES = ("state.",)


@dataclass(frozen=True)
class CrashViolation:
    """One invariant broken at one crash point."""

    kind: str
    path: str
    prefix: int  # ops applied before the crash (or -1 for trace-level)
    detail: str
    site: str = ""

    def __str__(self) -> str:
        return f"yanccrash [{self.kind}] {self.path} @prefix={self.prefix}: {self.detail}"

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "path": self.path,
            "prefix": self.prefix,
            "detail": self.detail,
            "site": self.site,
        }


@dataclass
class ExploreResult:
    """What one exploration covered and found."""

    ops: int = 0
    prefixes: int = 0
    window_states: int = 0
    truncated_windows: int = 0
    violations: list[CrashViolation] = field(default_factory=list)

    def summary(self) -> str:
        extra = f" + {self.window_states} flush-window states" if self.window_states else ""
        note = f" ({self.truncated_windows} window(s) truncated)" if self.truncated_windows else ""
        return (
            f"explored {self.prefixes} crash prefixes{extra} over {self.ops} "
            f"durable ops{note}: {len(self.violations)} invariant violation(s)"
        )


def _flow_parts(path: str) -> tuple[str, str] | None:
    """(flow_dir, filename) when ``path`` is a file directly in a flow dir."""
    parts = path.split("/")
    if len(parts) >= 4 and parts[-3] == "flows":
        return "/".join(parts[:-1]), parts[-1]
    return None


def _is_spec_file(filename: str) -> bool:
    return filename != "version" and not filename.startswith(_NON_SPEC_PREFIXES)


class ReplayTree:
    """A fresh kernel the trace is replayed into, one op at a time."""

    def __init__(self) -> None:
        self.vfs = VirtualFileSystem()
        self.sc = Syscalls(self.vfs)
        self.fds: dict[int, int] = {}  # live fd -> replay fd
        self.fd_paths: dict[int, str] = {}  # live fd -> path
        self.yanc_mounts: list[str] = []
        #: flow dir -> highest version value ever observed (monotonicity).
        self.version_high: dict[str, int] = {}
        #: published entry path -> {relative path: content} at rename time.
        self.published: dict[str, dict[str, bytes]] = {}

    # -- applying one durable op -----------------------------------------------------

    def apply(self, op: DurableOp) -> str | None:
        """Apply ``op``; returns the path whose durable state it changed."""
        handler = getattr(self, "_op_" + op.op.replace("-", "_"), None)
        if handler is None:
            return None
        try:
            return handler(*op.args)
        except FsError:
            return None

    def _op_mount(self, path: str, kind: str) -> str:
        if not self.sc.exists(path):
            self.sc.makedirs(path)
        if kind == "yanc":
            self.sc.mount(path, YancFs(clock=self.vfs.clock), source="yanc")
            self.yanc_mounts.append(path)
        return path

    def _op_open(self, path: str, flags: int, live_fd: int) -> str:
        self.fds[live_fd] = self.sc.open(path, flags)
        self.fd_paths[live_fd] = path
        return path

    def _op_write(self, live_fd: int, data: bytes) -> str | None:
        fd = self.fds.get(live_fd)
        if fd is None:
            return None
        self.sc.write(fd, data)
        return self.fd_paths.get(live_fd)

    def _op_pwrite(self, live_fd: int, data: bytes, offset: int) -> str | None:
        fd = self.fds.get(live_fd)
        if fd is None:
            return None
        self.sc.pwrite(fd, data, offset)
        return self.fd_paths.get(live_fd)

    def _op_ftruncate(self, live_fd: int, size: int) -> str | None:
        fd = self.fds.get(live_fd)
        if fd is None:
            return None
        self.sc.ftruncate(fd, size)
        return self.fd_paths.get(live_fd)

    def _op_close(self, live_fd: int) -> str | None:
        fd = self.fds.pop(live_fd, None)
        path = self.fd_paths.pop(live_fd, None)
        if fd is not None:
            # Close-time validation may reject and roll back, exactly as
            # it did (or would have) in the live run.
            self.sc.close(fd)
        return path

    def _op_truncate(self, path: str, size: int) -> str:
        self.sc.truncate(path, size)
        return path

    def _op_mkdir(self, path: str) -> str:
        self.sc.mkdir(path)
        return path

    def _op_rmdir(self, path: str) -> str:
        self.sc.rmdir(path)
        self._forget(path)
        return path

    def _op_unlink(self, path: str) -> str:
        self.sc.unlink(path)
        self._forget(path)
        return path

    def _op_rename(self, oldpath: str, newpath: str) -> str:
        self.sc.rename(oldpath, newpath)
        self._forget(oldpath)
        self._forget(newpath)
        old_base = oldpath.rsplit("/", 1)[-1]
        if old_base.startswith(".") and self._publication_checked(newpath):
            self.published[newpath] = self._snapshot(newpath)
        return newpath

    def _op_symlink(self, target: str, linkpath: str) -> str:
        self.sc.symlink(target, linkpath)
        return linkpath

    def _op_link(self, oldpath: str, newpath: str) -> str:
        self.sc.link(oldpath, newpath)
        return newpath

    def _op_fastpath_create(self, mount: str, switch: str, name: str, files: dict) -> str:
        flow_dir = f"{mount}/switches/{switch}/flows/{name}"
        self.sc.mkdir(flow_dir)
        for filename, content in files.items():
            try:
                # Replay machinery: reconstructing a recorded (possibly
                # torn) crash state, so no commit obligation applies here.
                self.sc.write_text(f"{flow_dir}/{filename}", content)  # yanclint: disable=flow-no-commit
            except FsError:
                continue
        return flow_dir + "/x"  # any direct child: flags spec writes below

    def _op_fastpath_write(self, mount: str, switch: str, name: str, files: dict) -> str:
        flow_dir = f"{mount}/switches/{switch}/flows/{name}"
        for filename, content in files.items():
            try:
                # Same as _op_fastpath_create: replay, not authorship.
                self.sc.write_text(f"{flow_dir}/{filename}", content)  # yanclint: disable=flow-no-commit
            except FsError:
                continue
        return flow_dir + "/x"

    def _op_fastpath_commit(self, mount: str, switch: str, name: str) -> str:
        flow_dir = f"{mount}/switches/{switch}/flows/{name}"
        version = flow_version(self.sc, flow_dir)
        self.sc.write_text(f"{flow_dir}/version", str(version + 1))
        return f"{flow_dir}/version"

    def _op_fastpath_delete(self, mount: str, switch: str, name: str) -> str:
        flow_dir = f"{mount}/switches/{switch}/flows/{name}"
        self.sc.rmdir(flow_dir)
        self._forget(flow_dir)
        return flow_dir

    # -- replay-side bookkeeping ------------------------------------------------------

    def _forget(self, path: str) -> None:
        """Drop per-path state for a removed/replaced subtree."""
        prefix = path + "/"
        for table in (self.version_high, self.published):
            for key in [k for k in table if k == path or k.startswith(prefix)]:
                del table[key]

    def _publication_checked(self, path: str) -> bool:
        """Is this rename target held to exact publication content?

        Event-spool entries and anything outside the yanc mounts are
        write-once maildir publications; switch/host objects are also
        rename-published but legitimately accumulate driver state later.
        """
        if "/events/" in path:
            return True
        return not any(
            path == m or path.startswith(m + "/") for m in self.yanc_mounts
        )

    def _snapshot(self, path: str) -> dict[str, bytes]:
        """Relative-path -> content of one published entry (file or dir)."""
        out: dict[str, bytes] = {}
        try:
            st = self.sc.stat(path)
        except FsError:
            return out
        if st.ftype is not FileType.DIRECTORY:
            try:
                out[""] = self.sc.read_bytes(path)
            except FsError:
                pass
            return out
        stack = [path]
        while stack:
            current = stack.pop()
            try:
                entries = self.sc.scandir(current)
            except FsError:
                continue
            for name, st in entries:
                child = f"{current}/{name}"
                if st.ftype is FileType.DIRECTORY:
                    stack.append(child)
                else:
                    try:
                        out[child[len(path) + 1 :]] = self.sc.read_bytes(child)
                    except FsError:
                        pass
        return out


# -- invariant checks over one replayed crash state ------------------------------------


def _walk_debris(sc: Syscalls, root: str) -> tuple[list[str], list[str]]:
    """Independently collect (dot entries, version-0 flow dirs) under root.

    Descendants of a dot-entry are not listed separately — recovery
    removes the whole entry.
    """
    dots: list[str] = []
    torn: list[str] = []
    stack = [(root, "")]
    while stack:
        path, parent_name = stack.pop()
        try:
            entries = sc.scandir(path)
        except FsError:
            continue
        for name, st in entries:
            child = f"{path}/{name}"
            if name.startswith("."):
                dots.append(child)
                continue
            if st.ftype is not FileType.DIRECTORY:
                continue
            if parent_name == "flows" and flow_version(sc, child) == 0:
                torn.append(child)
                continue
            stack.append((child, name))
    return dots, torn


def check_crash_state(tree: ReplayTree, prefix: int, out: list[CrashViolation], site: str = "") -> None:
    """Assert the post-crash invariants recovery must restore."""
    for root in tree.yanc_mounts:
        report = fsck(tree.sc, root, dry_run=True)
        stale = set(report.stale_entries)
        swept = set(report.torn_flows)
        dots, torn = _walk_debris(tree.sc, root)
        for path in dots:
            if path not in stale:
                out.append(
                    CrashViolation(
                        kind="leaked-dot-entry",
                        path=path,
                        prefix=prefix,
                        detail="dot-entry present at this crash point but the mount-time fsck sweep would not remove it",
                        site=site,
                    )
                )
        for path in torn:
            if path not in swept:
                out.append(
                    CrashViolation(
                        kind="unswept-torn-flow",
                        path=path,
                        prefix=prefix,
                        detail="flow directory still at version 0 at this crash point but recovery would leave it behind",
                        site=site,
                    )
                )
    for path, want in tree.published.items():
        have = tree._snapshot(path)
        if not have:
            continue  # consumed (or never landed): absence is legal
        if have != want:
            out.append(
                CrashViolation(
                    kind="torn-publication",
                    path=path,
                    prefix=prefix,
                    detail="published entry's content at this crash point differs from what its atomic rename() published",
                    site=site,
                )
            )


def _check_version_write(tree: ReplayTree, path: str | None, prefix: int, site: str, out: list[CrashViolation]) -> None:
    if path is None:
        return
    parts = _flow_parts(path)
    if parts is None or parts[1] != "version":
        return
    flow_dir = parts[0]
    value = flow_version(tree.sc, flow_dir)
    high = tree.version_high.get(flow_dir, 0)
    if value < high:
        out.append(
            CrashViolation(
                kind="version-regression",
                path=path,
                prefix=prefix,
                detail=f"flow version moved backwards ({high} -> {value}); versions only grow (§3.4)",
                site=site,
            )
        )
    else:
        tree.version_high[flow_dir] = value


def _check_spec_after_commit(ops: list[DurableOp], out: list[CrashViolation]) -> None:
    """Trace-level: every spec write to a committed flow needs a later commit."""
    fd_paths: dict[int, str] = {}
    committed: set[str] = set()
    pending: dict[str, tuple[int, DurableOp, str]] = {}  # flow dir -> first unclosed spec write
    for index, op in enumerate(ops):
        if op.op == "open":
            fd_paths[op.args[2]] = op.args[0]
            continue
        touched: list[tuple[str, str]] = []  # (flow_dir, filename)
        commits: list[str] = []
        if op.op in ("write", "pwrite"):
            path = fd_paths.get(op.args[0])
            parts = _flow_parts(path) if path else None
            if parts:
                if parts[1] == "version":
                    commits.append(parts[0])
                elif _is_spec_file(parts[1]):
                    touched.append(parts)
        elif op.op == "fastpath-commit":
            mount, switch, name = op.args
            commits.append(f"{mount}/switches/{switch}/flows/{name}")
        elif op.op == "fastpath-write":
            mount, switch, name, files = op.args
            flow_dir = f"{mount}/switches/{switch}/flows/{name}"
            touched.extend((flow_dir, f) for f in files if _is_spec_file(f))
        elif op.op in ("rmdir", "unlink"):
            committed.discard(op.args[0])
            pending.pop(op.args[0], None)
        elif op.op == "fastpath-delete":
            mount, switch, name = op.args
            flow_dir = f"{mount}/switches/{switch}/flows/{name}"
            committed.discard(flow_dir)
            pending.pop(flow_dir, None)
        for flow_dir in commits:
            committed.add(flow_dir)
            pending.pop(flow_dir, None)
        for flow_dir, filename in touched:
            if flow_dir in committed and flow_dir not in pending:
                pending[flow_dir] = (index, op, filename)
    for flow_dir, (index, op, filename) in sorted(pending.items()):
        out.append(
            CrashViolation(
                kind="spec-after-commit",
                path=f"{flow_dir}/{filename}",
                prefix=index,
                detail="spec write to an already-committed flow with no later version increment: every crash point after it exposes torn spec state under a stale version",
                site=op.site,
            )
        )


# -- the exploration loops -------------------------------------------------------------


def explore(
    ops: list[DurableOp], *, max_window_states: int = DEFAULT_MAX_WINDOW_STATES
) -> ExploreResult:
    """Enumerate every crash state of the trace and check each one."""
    result = ExploreResult(ops=len(ops))
    by_vfs: dict[int, list[DurableOp]] = {}
    for op in ops:
        by_vfs.setdefault(op.vfs, []).append(op)
    for group in by_vfs.values():
        _explore_group(group, result, max_window_states)
    _check_spec_after_commit(ops, result.violations)
    return result


def _explore_group(ops: list[DurableOp], result: ExploreResult, max_window_states: int) -> None:
    tree = ReplayTree()
    check_crash_state(tree, 0, result.violations)  # the empty-trace crash
    result.prefixes += 1
    windows: dict[int, list[int]] = {}
    for index, op in enumerate(ops):
        changed = tree.apply(op)
        _check_version_write(tree, changed, index + 1, op.site, result.violations)
        check_crash_state(tree, index + 1, result.violations, op.site)
        result.prefixes += 1
        if op.window is not None:
            windows.setdefault(op.window, []).append(index)
    for indices in windows.values():
        _explore_window(ops, indices, result, max_window_states)


def _explore_window(
    ops: list[DurableOp], indices: list[int], result: ExploreResult, max_window_states: int
) -> None:
    """Replay non-prefix subsets of one flush window's commits.

    The write-behind contract orders a flow's own ops but makes no
    promise across flows: any subset of a window's per-flow commits may
    have reached the store when the crash hit.  Prefix-shaped subsets
    were already covered by the main loop.
    """
    count = len(indices)
    if count < 2:
        return
    total = (1 << count) - 1  # skip the full set (== the prefix after the window)
    if total > max_window_states:
        total = max_window_states
        result.truncated_windows += 1
    before = indices[0]
    for mask in range(1, total + 1):
        subset = {indices[bit] for bit in range(count) if mask & (1 << bit)}
        if all(index in subset for index in indices[: len(subset)]):
            continue  # prefix-shaped: already explored
        tree = ReplayTree()
        # Non-window ops interleaved inside the window span (there are
        # none in practice — flush() only commits) would be skipped here.
        for index in range(before):
            tree.apply(ops[index])
        for index in sorted(subset):
            tree.apply(ops[index])
        check_crash_state(tree, before, result.violations, ops[indices[0]].site)
        result.window_states += 1


__all__ = [
    "CrashViolation",
    "DEFAULT_MAX_WINDOW_STATES",
    "ExploreResult",
    "ReplayTree",
    "check_crash_state",
    "explore",
]
