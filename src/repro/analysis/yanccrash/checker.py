"""yanccrash static pass: crash-consistency findings from persistence effects.

The pass rides on the yancpath abstract interpreter: every function's
recorded syscall sites (:class:`~repro.analysis.yancpath.interp.Site`)
and ring staging calls (:class:`~repro.analysis.yancpath.interp.UringSite`)
form a per-function *persistence-effect sequence* — data writes,
rename-publications, version-file commits, staged dot-entries,
chain-linked batch entries — in program order, with branch tags so
sites in sibling ``if`` arms are never treated as ordered.  Four
finding kinds judge that sequence:

* ``publish-before-data`` (error) — a publication (rename, or a §3.4
  ``version`` commit) is followed, on the same control path, by a write
  it was supposed to cover: a write under the rename's source or
  destination, or a flow spec write to the flow just committed.  A crash
  between the publication and the late write exposes torn state to
  readers who trusted the visibility point.
* ``non-atomic-publish`` (warning) — a directory made visible under its
  final name and then filled with two or more files, with no dot-temp +
  rename and no ``version`` gate.  Readers can list the directory
  half-filled; maildir or a version file makes it atomic.
* ``commit-outside-chain`` (error) — a batched flow whose ``version``
  write is prepped in a different uring chain than its spec writes.  A
  severed spec chain cancels the remaining spec writes but *not* the
  version write, so the flow becomes visible torn.
* ``unrecovered-staging`` (warning) — staged state (a dot-entry) whose
  staging directory no recovery path ever sweeps.  A module that stages
  under a directory declares its sweeper with a module-level
  ``YANCCRASH_RECOVERS = ("<path-prefix>", ...)`` tuple (see
  :mod:`repro.yancfs.recovery`, which declares ``/net`` for the
  mount-time fsck).  A crashed publisher leaks its temp forever
  otherwise.

Suppressions are ``# yanccrash: disable=<kind>`` comments (the yanclint
spelling works too; rule ids are unique across the tools).  Like the
rest of the suite, the pass errs toward silence: unresolvable paths,
unordered branches, and holes it cannot compare are never flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, Severity, SourceFile
from repro.analysis.yancpath import patterns as P
from repro.analysis.yancpath.checker import make_judge
from repro.analysis.yancpath.grammar import NamespaceModel
from repro.analysis.yancpath.interp import FuncInterp, ProjectIndex, Site, UringSite

KINDS = (
    "publish-before-data",
    "non-atomic-publish",
    "commit-outside-chain",
    "unrecovered-staging",
)

_SEVERITY = {
    "publish-before-data": Severity.ERROR,
    "non-atomic-publish": Severity.WARNING,
    "commit-outside-chain": Severity.ERROR,
    "unrecovered-staging": Severity.WARNING,
}

_WRITE_METHODS = frozenset({"write_text", "write_bytes"})
_MKDIR_METHODS = frozenset({"mkdir", "makedirs"})

#: The module-level declaration naming the staging prefixes a recovery
#: path sweeps.
RECOVERS_NAME = "YANCCRASH_RECOVERS"


# -- token-string helpers --------------------------------------------------------------


def _split(tokens: tuple) -> tuple[tuple, tuple] | None:
    """``(parent, basename)`` token strings, or None for a bare name."""
    last = -1
    for position, token in enumerate(tokens):
        if token == P.SEP:
            last = position
    if last < 0:
        return None
    return tokens[:last], tokens[last + 1 :]


def _parent(tokens: tuple) -> tuple | None:
    parts = _split(tokens)
    return parts[0] if parts else None


def _basename(tokens: tuple) -> tuple:
    parts = _split(tokens)
    return parts[1] if parts else tokens


def _basename_literal(tokens: tuple) -> str | None:
    base = _basename(tokens)
    if len(base) == 1 and base[0][0] == "text":
        return base[0][1]
    return None


def _is_dot(tokens: tuple) -> bool:
    """Does the final path segment start with a literal dot?"""
    base = _basename(tokens)
    return bool(base) and base[0][0] == "text" and base[0][1].startswith(".")


def _under(parent: tuple, child: tuple) -> bool:
    """Is ``child`` strictly inside ``parent`` (token-prefix containment)?"""
    if len(child) <= len(parent) or child[: len(parent)] != parent:
        return False
    return child[len(parent)] == P.SEP


def _under_or_equal(parent: tuple, child: tuple) -> bool:
    return child == parent or _under(parent, child)


def _ordered(a: tuple, b: tuple) -> bool:
    """Are two branch stacks comparable (one a prefix of the other)?"""
    shorter = min(len(a), len(b))
    return a[:shorter] == b[:shorter]


def _is_flow_dir(tokens: tuple) -> bool:
    """Does the path name a ``flows/<name>`` directory (version-gated)?"""
    parent = _parent(tokens)
    return parent is not None and _basename_literal(parent) == "flows"


def _covered(declared: list[tuple[str, ...]], parent_tokens: tuple) -> bool:
    """Does a declared recovery prefix cover the staging directory?

    The declared prefix's segments are matched against the pattern's
    leading atoms; atoms the lattice cannot pin (holes, ``*``) match
    leniently — the pass errs toward silence.
    """
    pattern = P.finalize(parent_tokens)
    if pattern is None:
        return True  # unfinalizable: cannot judge
    for prefix in declared:
        if len(pattern.atoms) < len(prefix):
            continue
        if all(
            atom is P.STAR or atom.literal is None or atom.literal == segment
            for segment, atom in zip(prefix, pattern.atoms)
        ):
            return True
    return False


def recovery_declarations(sources: Iterable[SourceFile]) -> list[tuple[str, ...]]:
    """All ``YANCCRASH_RECOVERS`` prefixes declared anywhere in the project."""
    declared: list[tuple[str, ...]] = []
    for src in sources:
        for stmt in src.tree.body:
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                continue
            target = stmt.targets[0]
            if not (isinstance(target, ast.Name) and target.id == RECOVERS_NAME):
                continue
            if not isinstance(stmt.value, (ast.Tuple, ast.List)):
                continue
            for element in stmt.value.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    segments = tuple(s for s in element.value.split("/") if s)
                    if segments:
                        declared.append(segments)
    return declared


# -- the per-function judgments --------------------------------------------------------


class _FuncJudge:
    """Run the four crash-consistency checks over one interpreted function."""

    def __init__(self, interp: FuncInterp, judge, declared, emit) -> None:
        self.interp = interp
        self.judge = judge
        self.declared = declared
        self.emit = emit

    def run(self) -> None:
        sites = self.interp.sites
        self._publish_before_data(sites)
        self._non_atomic_publish(sites)
        self._commit_outside_chain(self.interp.uring_sites)
        self._unrecovered_staging(sites, self.interp.uring_sites)

    # publish-before-data ---------------------------------------------------------

    def _publish_before_data(self, sites: list[Site]) -> None:
        for position, site in enumerate(sites):
            if site.method == "rename" and len(site.paths) == 2:
                src, dst = site.paths
                for late in sites[position + 1 :]:
                    if late.method not in _WRITE_METHODS | _MKDIR_METHODS:
                        continue
                    if not _ordered(site.branch, late.branch) or late.loop is not site.loop:
                        continue
                    if not late.paths:
                        continue
                    path = late.paths[0]
                    if _under_or_equal(src, path) or _under_or_equal(dst, path):
                        self.emit(
                            "publish-before-data",
                            late.node,
                            f"{late.method}() lands under an entry already "
                            "published by rename(); a crash here leaves the "
                            "published entry torn — write before renaming",
                        )
            elif site.method in _WRITE_METHODS and self._role(site) == "commit":
                flow_dir = _parent(site.paths[0])
                if flow_dir is None:
                    continue
                for late in sites[position + 1 :]:
                    if late.method not in _WRITE_METHODS or not late.paths:
                        continue
                    if not _ordered(site.branch, late.branch) or late.loop is not site.loop:
                        continue
                    if self._role(late) == "stage" and _parent(late.paths[0]) == flow_dir:
                        self.emit(
                            "publish-before-data",
                            late.node,
                            "flow spec write after the version commit that "
                            "publishes it; a crash here exposes a committed "
                            "flow with torn spec state (§3.4)",
                        )

    def _role(self, site: Site) -> str | None:
        return self.judge(site.paths[0]) if site.paths else None

    # non-atomic-publish ----------------------------------------------------------

    def _non_atomic_publish(self, sites: list[Site]) -> None:
        renamed_sources = {
            site.paths[0]
            for site in sites
            if site.method == "rename" and len(site.paths) == 2
        }
        for position, site in enumerate(sites):
            if site.method not in _MKDIR_METHODS or not site.paths:
                continue
            target = site.paths[0]
            if _is_dot(target):
                continue  # a staging dir: the dot-entry protocol at work
            if _is_flow_dir(target):
                continue  # version-gated: invisible until version leaves 0
            if target in renamed_sources:
                continue  # renamed into place later: atomic at the rename
            children: set[tuple] = set()
            gated = False
            for late in sites[position + 1 :]:
                if late.method not in _WRITE_METHODS or not late.paths:
                    continue
                if not _ordered(site.branch, late.branch):
                    continue
                if _parent(late.paths[0]) == target:
                    children.add(_basename(late.paths[0]))
                    if _basename_literal(late.paths[0]) == "version":
                        gated = True
            if len(children) >= 2 and not gated:
                self.emit(
                    "non-atomic-publish",
                    site.node,
                    f"directory created under its final name and filled with "
                    f"{len(children)} files; readers can list it half-written "
                    "— assemble under a dot-temp and rename() into place, or "
                    "gate visibility with a version file",
                )

    # commit-outside-chain --------------------------------------------------------

    def _commit_outside_chain(self, uring_sites: list[UringSite]) -> None:
        if not uring_sites:
            return
        # Chains break only AFTER a link=False entry — links carry across
        # loop iterations and out of branches at runtime, so loop/branch
        # boundaries must not sever a static chain (link=None, a
        # non-constant flag, leniently continues it).
        chains: list[list[UringSite]] = []
        current: list[UringSite] = []
        for site in uring_sites:
            current.append(site)
            if site.link is False:
                chains.append(current)
                current = []
        if current:
            chains.append(current)
        staged_parents_by_chain: list[set[tuple]] = []
        for chain in chains:
            parents: set[tuple] = set()
            for site in chain:
                if not site.paths:
                    continue
                if site.op == "write_file" and self.judge(site.paths[0]) == "stage":
                    parent = _parent(site.paths[0])
                    if parent is not None:
                        parents.add(parent)
                elif site.op == "mkdir":
                    parents.add(site.paths[0])
            staged_parents_by_chain.append(parents)
        for index, chain in enumerate(chains):
            for site in chain:
                if site.op != "write_file" or not site.paths:
                    continue
                if self.judge(site.paths[0]) != "commit":
                    continue
                flow_dir = _parent(site.paths[0])
                if flow_dir is None or flow_dir in staged_parents_by_chain[index]:
                    continue
                if any(
                    flow_dir in staged_parents_by_chain[chain_index]
                    and any(
                        _ordered(site.branch, other.branch)
                        for other in chains[chain_index]
                    )
                    for chain_index in range(len(chains))
                    if chain_index != index
                ):
                    self.emit(
                        "commit-outside-chain",
                        site.node,
                        "batched version write is not chain-linked to the "
                        "spec writes it publishes; a severed spec chain "
                        "cancels the specs but still commits the version, "
                        "exposing a torn flow — prep the version write as "
                        "the tail of the same linked chain",
                    )

    # unrecovered-staging ---------------------------------------------------------

    def _unrecovered_staging(self, sites: list[Site], uring_sites: list[UringSite]) -> None:
        seen_parents: set[tuple] = set()
        staging: list[tuple[tuple, ast.AST]] = []
        for site in sites:
            if site.method not in _WRITE_METHODS | _MKDIR_METHODS or not site.paths:
                continue
            if _is_dot(site.paths[0]):
                staging.append((site.paths[0], site.node))
        for usite in uring_sites:
            if usite.op in ("write_file", "mkdir") and usite.paths and _is_dot(usite.paths[0]):
                staging.append((usite.paths[0], usite.node))
        for path, node in staging:
            parent = _parent(path) or ()
            if parent in seen_parents:
                continue
            seen_parents.add(parent)
            pattern = P.finalize(parent) if parent else None
            anchored = pattern is not None and pattern.anchored
            if anchored:
                flagged = not _covered(self.declared, parent)
            else:
                # Holes hide the staging root; only flag when the project
                # declares no recovery path at all (erring toward silence).
                flagged = not self.declared
            if flagged:
                self.emit(
                    "unrecovered-staging",
                    node,
                    "dot-entry staged here has no recovery path: a crash "
                    "before the rename leaks it forever — sweep the staging "
                    "directory at startup and declare it in a module-level "
                    f"{RECOVERS_NAME} tuple",
                )


# -- orchestration ---------------------------------------------------------------------


def analyze_yanccrash(paths: list[str], *, model: NamespaceModel | None = None) -> list[Finding]:
    """Run the crash-consistency static pass over files/directories."""
    from repro.analysis.loader import load_files

    sources, findings = load_files(paths)
    findings.extend(analyze_sources(sources, model=model))
    findings.sort(key=Finding.sort_key)
    return findings


def analyze_sources(
    sources: Iterable[SourceFile], *, model: NamespaceModel | None = None
) -> list[Finding]:
    """Analyze already-parsed sources (the CLI adds loader findings)."""
    sources = list(sources)
    if model is None:
        model = NamespaceModel.build()
    judge = make_judge(model)
    index = ProjectIndex(sources, judge)
    declared = recovery_declarations(sources)
    out: list[Finding] = []
    for module in index.modules:
        src: SourceFile = module.src
        emitted: set[tuple[int, int, str]] = set()

        def emit(kind: str, node, message: str) -> None:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0) + 1
            key = (line, col, kind)
            if key in emitted or src.is_suppressed(kind, line):
                return
            emitted.add(key)
            out.append(
                Finding(
                    path=src.path,
                    line=line,
                    col=col,
                    rule=kind,
                    severity=_SEVERITY[kind],
                    message=message,
                )
            )

        interps = [FuncInterp(index, None, module=module)]
        interps += [FuncInterp(index, decl) for decl in module.functions]
        for interp in interps:
            interp.run()
            _FuncJudge(interp, judge, declared, emit).run()
    return out


__all__ = [
    "KINDS",
    "RECOVERS_NAME",
    "analyze_sources",
    "analyze_yanccrash",
    "recovery_declarations",
]
