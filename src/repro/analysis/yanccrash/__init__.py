"""yanccrash: crash-consistency analysis for the commit/publication surfaces.

The tree's durability story rests on two idioms: the §3.4 version-file
commit (spec writes are invisible until ``version`` leaves 0, and the
version increment is the atomic visibility point) and maildir
publication (assemble under a dot-temp, ``rename()`` into place).  Both
are *protocols*, not mechanisms — nothing stops a caller from renaming
before writing, committing a version in a different uring chain than
its spec writes, or staging a dot-temp nobody ever sweeps.  yanccrash
checks the protocols, two ways:

* :mod:`repro.analysis.yanccrash.checker` — a **static
  persistence-effect pass** over the yancpath abstract interpreter's
  per-function site sequences, judging program-order of durable effects
  into four finding kinds (``publish-before-data``,
  ``non-atomic-publish``, ``commit-outside-chain``,
  ``unrecovered-staging``);
* :mod:`repro.analysis.yanccrash.recorder` /
  :mod:`repro.analysis.yanccrash.explorer` — a **crash-point model
  checker** in the yancrace mold: record the durable-op trace through
  the ``Syscalls`` choke points while a workload runs, then replay
  every crash prefix (including mid-chain uring severs and the legal
  reorderings the write-behind ``flush()`` contract permits), run the
  real :func:`repro.yancfs.recovery.fsck`, and assert the post-crash
  invariants — flows all-or-nothing at their visibility point, versions
  monotonic, no reader-visible torn state, no leaked dot-entries.

Run it as ``python -m repro.analysis yanccrash [paths] [--explore
workload.py]``; suppress individual findings with ``# yanccrash:
disable=<kind>`` comments.
"""

from __future__ import annotations

from repro.analysis.core import register_suppression_tool

register_suppression_tool("yanccrash")

from repro.analysis.yanccrash.checker import KINDS, analyze_yanccrash  # noqa: E402

__all__ = ["KINDS", "analyze_yanccrash"]
