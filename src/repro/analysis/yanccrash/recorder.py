"""The durable-op recorder: yanccrash's dynamic choke-point instrumentation.

Sits at the same class-level monkeypatch seam as yancrace, but records the
opposite projection of a workload: not *orderings* between accesses but
the *durable-effect trace* — every operation that changes what a crash
would leave on disk, in program order, through the ``Syscalls`` choke
points.  ``write_text``/``makedirs`` decompose into their primitive calls
inside ``Syscalls`` (``open → write → close``, ``exists + mkdir`` per
component), so the trace naturally carries every point a crash could
split a composite operation.  ``IoUring.submit`` dispatches each batched
entry through the same ``Syscalls`` methods, so batched ops land in the
trace too; the recorder tags them with a submit-batch id so the explorer
can label mid-chain sever prefixes.  Direct-store ``libyanc`` mutations
never cross ``Syscalls`` — those are captured at the ``LibYanc`` method
layer as synthetic ``fastpath-*`` ops, and ``flush()`` opens a *reorder
window* around the per-flow commits it performs (the write-behind
contract orders commits per flow, not across flows, so the explorer may
legally replay any subset of a window as having reached the store before
the crash).

Only paths under the recorder's roots (default ``/net`` and ``/var``)
are recorded — analysis scratch I/O and unrelated trees stay out of the
trace.  The recorder takes no snapshots and issues no syscalls of its
own: replay is deterministic, so the explorer reconstructs any
intermediate state it needs from the trace alone.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from repro.vfs.syscalls import O_CREAT, O_RDONLY, O_RDWR, O_TRUNC, O_WRONLY, Syscalls
from repro.vfs.uring import IoUring

#: Reported sites skip substrate frames, same as yancrace.
_INFRA_MARKERS = ("/repro/vfs/", "/repro/analysis/", "/repro/yancfs/", "/repro/libyanc/")

_WRITE_FLAGS = O_WRONLY | O_RDWR | O_CREAT | O_TRUNC


@dataclass(frozen=True)
class DurableOp:
    """One recorded durable effect (crash prefixes cut between these)."""

    op: str  # a Syscalls primitive name, "mount", or "fastpath-*"
    args: tuple  # op-specific; paths are absolute
    vfs: int  # id() of the kernel the op landed on
    batch: int | None = None  # uring submit batch, when dispatched by one
    window: int | None = None  # write-behind flush window, when inside one
    site: str = "<unknown>"


def _call_site() -> str:
    frame = sys._getframe(1)
    for _ in range(40):
        if frame is None:
            break
        filename = frame.f_code.co_filename.replace("\\", "/")
        if not any(marker in filename for marker in _INFRA_MARKERS):
            return f"{frame.f_code.co_filename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


class CrashRecorder:
    """Collects the durable-op trace between :meth:`install` and :meth:`uninstall`."""

    def __init__(self, roots: tuple[str, ...] = ("/net", "/var")) -> None:
        self.roots = tuple(roots)
        self.ops: list[DurableOp] = []

    def in_scope(self, path: str) -> bool:
        return any(path == root or path.startswith(root + "/") for root in self.roots)

    def record(
        self, op: str, args: tuple, vfs_id: int, *, batch: int | None = None
    ) -> None:
        self.ops.append(
            DurableOp(
                op=op,
                args=args,
                vfs=vfs_id,
                batch=batch if batch is not None else _BATCH_ACTIVE,
                window=_WINDOW_ACTIVE,
                site=_call_site(),
            )
        )

    # -- lifecycle -----------------------------------------------------------------

    def install(self) -> "CrashRecorder":
        _patch_once()
        if self not in _RECORDERS:
            _RECORDERS.append(self)
        return self

    def uninstall(self) -> None:
        if self in _RECORDERS:
            _RECORDERS.remove(self)

    def reset(self) -> None:
        self.ops.clear()
        _TRACKED_FDS.clear()


#: Active recorders; patched methods are no-ops when empty.
_RECORDERS: list[CrashRecorder] = []
#: (id(sc), fd) -> absolute path, for write-capable opens under a root.
_TRACKED_FDS: dict[tuple[int, int], str] = {}
#: id(YancFs) -> mount path, so fastpath ops can be replayed by path.
_FS_MOUNTS: dict[int, str] = {}
#: Current uring submit batch (None outside IoUring.submit).
_BATCH_ACTIVE: int | None = None
_BATCH_SEQ = 0
#: Current write-behind flush window (None outside LibYanc.flush).
_WINDOW_ACTIVE: int | None = None
_WINDOW_SEQ = 0

_patched = False


def _record(op: str, args: tuple, vfs_id: int) -> None:
    for recorder in _RECORDERS:
        recorder.record(op, args, vfs_id)


def _record_path(self: Syscalls, op: str, *paths: str, extra: tuple = ()) -> None:
    abspaths = tuple(self._abspath(p) for p in paths)
    for recorder in _RECORDERS:
        if any(recorder.in_scope(p) for p in abspaths):
            recorder.record(op, abspaths + extra, id(self.vfs))


def _patch_once() -> None:
    global _patched
    if _patched:
        return
    _patched = True

    from repro.libyanc.fastpath import LibYanc
    from repro.yancfs.schema import YancFs

    orig_open = Syscalls.open
    orig_write = Syscalls.write
    orig_pwrite = Syscalls.pwrite
    orig_close = Syscalls.close
    orig_ftruncate = Syscalls.ftruncate
    orig_truncate = Syscalls.truncate
    orig_mkdir = Syscalls.mkdir
    orig_rmdir = Syscalls.rmdir
    orig_unlink = Syscalls.unlink
    orig_rename = Syscalls.rename
    orig_symlink = Syscalls.symlink
    orig_link = Syscalls.link
    orig_mount = Syscalls.mount
    orig_submit = IoUring.submit
    orig_ly_create = LibYanc.create_flow
    orig_ly_commit = LibYanc.commit_flow
    orig_ly_write = LibYanc.write_flow_files
    orig_ly_delete = LibYanc.delete_flow
    orig_ly_flush = LibYanc.flush

    def patched_open(self: Syscalls, path: str, flags: int = O_RDONLY, mode: int = 0o644) -> int:
        if not _RECORDERS:
            return orig_open(self, path, flags, mode)
        fd = orig_open(self, path, flags, mode)
        if flags & _WRITE_FLAGS:
            abspath = self._abspath(path)
            if any(r.in_scope(abspath) for r in _RECORDERS):
                _TRACKED_FDS[(id(self), fd)] = abspath
                _record("open", (abspath, flags, fd), id(self.vfs))
        return fd

    def patched_write(self: Syscalls, fd: int, data: bytes) -> int:
        if not _RECORDERS:
            return orig_write(self, fd, data)
        result = orig_write(self, fd, data)
        if (id(self), fd) in _TRACKED_FDS:
            _record("write", (fd, bytes(data)), id(self.vfs))
        return result

    def patched_pwrite(self: Syscalls, fd: int, data: bytes, offset: int) -> int:
        if not _RECORDERS:
            return orig_pwrite(self, fd, data, offset)
        result = orig_pwrite(self, fd, data, offset)
        if (id(self), fd) in _TRACKED_FDS:
            _record("pwrite", (fd, bytes(data), offset), id(self.vfs))
        return result

    def patched_close(self: Syscalls, fd: int) -> None:
        if not _RECORDERS:
            return orig_close(self, fd)
        tracked = (id(self), fd) in _TRACKED_FDS
        try:
            return orig_close(self, fd)
        finally:
            # Recorded even when close-time validation raises: the replay
            # tree runs the same validator and rolls back the same way.
            if tracked:
                _TRACKED_FDS.pop((id(self), fd), None)
                _record("close", (fd,), id(self.vfs))

    def patched_ftruncate(self: Syscalls, fd: int, size: int) -> None:
        if not _RECORDERS:
            return orig_ftruncate(self, fd, size)
        orig_ftruncate(self, fd, size)
        if (id(self), fd) in _TRACKED_FDS:
            _record("ftruncate", (fd, size), id(self.vfs))

    def patched_truncate(self: Syscalls, path: str, size: int) -> None:
        if not _RECORDERS:
            return orig_truncate(self, path, size)
        orig_truncate(self, path, size)
        _record_path(self, "truncate", path, extra=(size,))

    def patched_mkdir(self: Syscalls, path: str, mode: int = 0o755) -> None:
        if not _RECORDERS:
            return orig_mkdir(self, path, mode)
        orig_mkdir(self, path, mode)
        _record_path(self, "mkdir", path)

    def patched_rmdir(self: Syscalls, path: str) -> None:
        if not _RECORDERS:
            return orig_rmdir(self, path)
        orig_rmdir(self, path)
        _record_path(self, "rmdir", path)

    def patched_unlink(self: Syscalls, path: str) -> None:
        if not _RECORDERS:
            return orig_unlink(self, path)
        orig_unlink(self, path)
        _record_path(self, "unlink", path)

    def patched_rename(self: Syscalls, oldpath: str, newpath: str) -> None:
        if not _RECORDERS:
            return orig_rename(self, oldpath, newpath)
        orig_rename(self, oldpath, newpath)
        _record_path(self, "rename", oldpath, newpath)

    def patched_symlink(self: Syscalls, target: str, linkpath: str) -> None:
        if not _RECORDERS:
            return orig_symlink(self, target, linkpath)
        orig_symlink(self, target, linkpath)
        abspath = self._abspath(linkpath)
        for recorder in _RECORDERS:
            if recorder.in_scope(abspath):
                recorder.record("symlink", (target, abspath), id(self.vfs))

    def patched_link(self: Syscalls, oldpath: str, newpath: str) -> None:
        if not _RECORDERS:
            return orig_link(self, oldpath, newpath)
        orig_link(self, oldpath, newpath)
        _record_path(self, "link", oldpath, newpath)

    def patched_mount(self: Syscalls, path: str, fs, *, source: str = "") -> None:
        if not _RECORDERS:
            return orig_mount(self, path, fs, source=source)
        orig_mount(self, path, fs, source=source)
        abspath = self._abspath(path)
        kind = "yanc" if isinstance(fs, YancFs) else type(fs).__name__
        if kind == "yanc":
            _FS_MOUNTS[id(fs)] = abspath
        for recorder in _RECORDERS:
            if recorder.in_scope(abspath):
                recorder.record("mount", (abspath, kind), id(self.vfs))

    def patched_submit(self: IoUring) -> int:
        if not _RECORDERS:
            return orig_submit(self)
        global _BATCH_ACTIVE, _BATCH_SEQ
        _BATCH_SEQ += 1
        previous, _BATCH_ACTIVE = _BATCH_ACTIVE, _BATCH_SEQ
        try:
            return orig_submit(self)
        finally:
            _BATCH_ACTIVE = previous

    def _fastpath(op: str, ly: LibYanc, args: tuple) -> None:
        mount = _FS_MOUNTS.get(id(ly.fs))
        if mount is None:
            return  # store not reachable through any recorded tree
        for recorder in _RECORDERS:
            if recorder.in_scope(mount):
                recorder.record(op, (mount,) + args, id(ly.fs))

    def patched_ly_create(self: LibYanc, switch, name, match, actions, **kwargs):
        if not _RECORDERS:
            return orig_ly_create(self, switch, name, match, actions, **kwargs)
        # Reconstruct the spec-file dict exactly as create_flow does; the
        # nested commit (commit=True) records separately via commit_flow.
        result = orig_ly_create(self, switch, name, match, actions, **kwargs)
        files = dict(match.to_files())
        for index, action in enumerate(actions):
            filename, content = action.to_file()
            if index:
                filename = f"{filename}.{index}"
            files[filename] = content
        for key, attr in (("priority", "priority"), ("idle_timeout", "timeout"), ("hard_timeout", "hard_timeout")):
            value = kwargs.get(key)
            if value is not None:
                files[attr] = str(value)
        _fastpath("fastpath-create", self, (switch, name, files))
        return result

    def patched_ly_commit(self: LibYanc, switch, name):
        if not _RECORDERS:
            return orig_ly_commit(self, switch, name)
        result = orig_ly_commit(self, switch, name)
        _fastpath("fastpath-commit", self, (switch, name))
        return result

    def patched_ly_write(self: LibYanc, switch, name, files, *, commit: bool = False):
        if not _RECORDERS:
            return orig_ly_write(self, switch, name, files, commit=commit)
        result = orig_ly_write(self, switch, name, files, commit=commit)
        _fastpath("fastpath-write", self, (switch, name, dict(files)))
        return result

    def patched_ly_delete(self: LibYanc, switch, name):
        if not _RECORDERS:
            return orig_ly_delete(self, switch, name)
        result = orig_ly_delete(self, switch, name)
        _fastpath("fastpath-delete", self, (switch, name))
        return result

    def patched_ly_flush(self: LibYanc):
        if not _RECORDERS:
            return orig_ly_flush(self)
        global _WINDOW_ACTIVE, _WINDOW_SEQ
        _WINDOW_SEQ += 1
        previous, _WINDOW_ACTIVE = _WINDOW_ACTIVE, _WINDOW_SEQ
        try:
            return orig_ly_flush(self)
        finally:
            _WINDOW_ACTIVE = previous

    Syscalls.open = patched_open  # type: ignore[method-assign]
    Syscalls.write = patched_write  # type: ignore[method-assign]
    Syscalls.pwrite = patched_pwrite  # type: ignore[method-assign]
    Syscalls.close = patched_close  # type: ignore[method-assign]
    Syscalls.ftruncate = patched_ftruncate  # type: ignore[method-assign]
    Syscalls.truncate = patched_truncate  # type: ignore[method-assign]
    Syscalls.mkdir = patched_mkdir  # type: ignore[method-assign]
    Syscalls.rmdir = patched_rmdir  # type: ignore[method-assign]
    Syscalls.unlink = patched_unlink  # type: ignore[method-assign]
    Syscalls.rename = patched_rename  # type: ignore[method-assign]
    Syscalls.symlink = patched_symlink  # type: ignore[method-assign]
    Syscalls.link = patched_link  # type: ignore[method-assign]
    Syscalls.mount = patched_mount  # type: ignore[method-assign]
    IoUring.submit = patched_submit  # type: ignore[method-assign]
    LibYanc.create_flow = patched_ly_create  # type: ignore[method-assign]
    LibYanc.commit_flow = patched_ly_commit  # type: ignore[method-assign]
    LibYanc.write_flow_files = patched_ly_write  # type: ignore[method-assign]
    LibYanc.delete_flow = patched_ly_delete  # type: ignore[method-assign]
    LibYanc.flush = patched_ly_flush  # type: ignore[method-assign]


__all__ = ["CrashRecorder", "DurableOp"]
