"""yancrace: an opt-in happens-before race detector for the process fleet.

yanc's processes cooperate through shared files, with the ``version``-file
increment as the only atomic commit point for flows (§3.4) — so the
signature failure modes are lost updates, torn multi-file writes, and
reads of uncommitted flow state.  Where yancsan checks per-operation
invariants, yancrace checks the *ordering* between operations: every
syscall context (each :class:`~repro.proc.process.Process` owns one; a
plain test-harness :class:`~repro.vfs.syscalls.Syscalls` counts too) is
an actor with a vector clock, every regular-file data access is recorded
in a bounded per-inode shadow history, and two conflicting accesses with
no happens-before edge between them are a race.

Happens-before edges come only from the substrate's real synchronization
points, mirroring §3.4/§5.2 semantics:

* **notify delivery** — every event delivered to an inotify instance
  carries the emitter's clock; draining the instance (``inotify_read``)
  or seeing it ready (``epoll_wait``) acquires the accumulated clock, so
  a watcher inherits everything its writers did before emitting.
* **version-file commits** — writing a flow's ``version`` releases the
  committer's clock against that file; reading it acquires the last
  released clock.  Observing the new version therefore orders the reader
  after every spec write the commit covered.
* **scheduling** — ``Process.every``/``schedule`` (and therefore cron
  jobs) capture the scheduler's clock at creation; the scheduled run
  acquires it.  Supervised restarts reuse the crashed process's context,
  so program order already covers them.
* **distfs RPC** — a call releases the sender's clock to whoever handles
  it, and the reply releases the handlers' clocks back to the sender.
* **simulator quiescence** — entering and leaving ``Simulator.run`` /
  ``run_until`` joins all clocks (a global barrier): the sequential test
  harness around a run window is ordered against everything inside it,
  while accesses *within* one window stay concurrent unless a real edge
  orders them.

A second pass model-checks the commit protocol itself: a ``match.*`` /
``action.*`` / attribute write to an already-committed flow must be
followed by a ``version`` increment by the same committer
(**torn-commit** otherwise), and no other actor may read the spec while
that increment is outstanding (**uncommitted-read**).

Accesses to ``counters/`` files are exempt: counters are lossy-by-design
monitoring state the driver overwrites and anyone samples (§3.5), not
shared state the protocol orders.  Direct-store mutations that bypass
``Syscalls`` (``libyanc.fastpath``) are invisible here, exactly as they
are invisible to the kernel's fsnotify.

Usage::

    YANCRACE=1 python -m pytest               # conftest wires teardown checks
    python -m repro.analysis race workload.py # run any script under the detector

Findings can be suppressed at either involved source line with
``# yancrace: disable=<kind>`` (kinds: ``race``, ``torn-commit``,
``uncommitted-read``, or ``all``).
"""

from __future__ import annotations

import linecache
import os
import sys
from collections import deque
from dataclasses import dataclass

from repro.analysis.core import comment_suppresses, register_suppression_tool
from repro.analysis.hb import Actor, VectorClock
from repro.analysis.sanitizer import _FLOW_SPEC_NAMES
from repro.vfs.errors import FsError
from repro.vfs.inode import FileInode
from repro.vfs.syscalls import O_RDONLY, O_TRUNC, Syscalls
from repro.yancfs.schema import CountersDir, FlowNode

register_suppression_tool("yancrace")

#: Frames whose filename matches one of these are substrate plumbing; the
#: reported syscall site is the first frame outside them (app/test code).
_INFRA_MARKERS = ("/repro/vfs/", "/repro/analysis/", "/repro/yancfs/", "/repro/libyanc/")

#: Bounded per-inode access history (like TSan's shadow cells): old
#: accesses age out, trading missed ancient races for bounded memory.
DEFAULT_HISTORY = 16

#: Actor key shared by every context not owned by a process (id() of a
#: real object is never 0, so this cannot collide).
_HARNESS_AID = 0


@dataclass(frozen=True)
class RaceFinding:
    """One ordering violation, with both parties' identities and sites."""

    kind: str  # "race" | "torn-commit" | "uncommitted-read"
    path: str
    detail: str
    actors: tuple[str, ...] = ()
    sites: tuple[str, ...] = ()

    def __str__(self) -> str:
        return f"yancrace [{self.kind}] {self.detail}"

    def to_json(self) -> dict:
        """A JSON-stable dict (what ``--json`` and baselines diff on)."""
        return {
            "kind": self.kind,
            "path": self.path,
            "detail": self.detail,
            "actors": list(self.actors),
            "sites": list(self.sites),
        }


class _Access:
    """One recorded shadow access: who, when (their tick), how, where."""

    __slots__ = ("actor", "tick", "write", "site")

    def __init__(self, actor: Actor, tick: int, write: bool, site: str) -> None:
        self.actor = actor
        self.tick = tick
        self.write = write
        self.site = site


@dataclass
class _PendingSpec:
    """A spec write to a committed flow awaiting its version increment."""

    flow: FlowNode
    name: str
    path: str
    site: str
    actor: Actor
    tick: int
    version: int


def _call_site() -> str:
    """``file:line`` of the nearest non-substrate frame (the app's site)."""
    frame = sys._getframe(1)
    for _ in range(40):
        if frame is None:
            break
        filename = frame.f_code.co_filename.replace("\\", "/")
        if not any(marker in filename for marker in _INFRA_MARKERS):
            return f"{frame.f_code.co_filename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


def _site_suppressed(kind: str, *sites: str) -> bool:
    """True when any involved source line carries a disable comment."""
    for site in sites:
        path, _, lineno = site.rpartition(":")
        if not path:
            continue
        try:
            number = int(lineno)
        except ValueError:
            continue
        if comment_suppresses(linecache.getline(path, number), kind):
            return True
    return False


def _current_version(flow: FlowNode) -> int:
    node = flow._children.get("version")
    if not isinstance(node, FileInode):
        return 0
    try:
        return int(node.read_all().decode(errors="replace").strip() or "0", 0)
    except ValueError:
        return 0


class RaceDetector:
    """Collects ordering findings between :meth:`reset` and :meth:`check`."""

    def __init__(self, *, history: int = DEFAULT_HISTORY) -> None:
        self.findings: list[RaceFinding] = []
        self.history = max(2, history)
        # id(syscalls) -> Actor (the sc object is pinned inside).
        self._actors: dict[int, Actor] = {}
        # id(inode) -> (inode, bounded access deque); inode pinned so its
        # id cannot be recycled while history still names it.
        self._shadow: dict[int, tuple[FileInode, deque]] = {}
        # id(inotify instance) -> (instance, accumulated emitter clock).
        self._inbox: dict[int, tuple[object, VectorClock]] = {}
        # id(version inode) -> (inode, clock released by the last commit).
        self._commit_clocks: dict[int, tuple[FileInode, VectorClock]] = {}
        # (id(flow), actor id) -> spec write awaiting its version bump.
        self._pending: dict[tuple[int, int], _PendingSpec] = {}
        # id(inode) -> (inode, publisher clock at rename time): rename is
        # the atomic-publish op (maildir), so reaching a renamed object
        # acquires its publication.
        self._published: dict[int, tuple[object, VectorClock]] = {}
        # Dedup keys so one racy loop reports once, not per iteration.
        self._seen: set[tuple] = set()
        self._barrier = VectorClock()
        self._barrier_epoch = 0

    # -- lifecycle -----------------------------------------------------------------

    def install(self) -> "RaceDetector":
        """Start observing; idempotent per detector."""
        _patch_once()
        if self not in _DETECTORS:
            _DETECTORS.append(self)
        return self

    def uninstall(self) -> None:
        """Stop observing (the monkeypatches stay, but become no-ops)."""
        if self in _DETECTORS:
            _DETECTORS.remove(self)

    def reset(self) -> None:
        """Drop all recorded state, e.g. between tests."""
        self.findings.clear()
        self._actors.clear()
        self._shadow.clear()
        self._inbox.clear()
        self._commit_clocks.clear()
        self._pending.clear()
        self._published.clear()
        self._seen.clear()
        self._barrier = VectorClock()
        self._barrier_epoch = 0
        # The fd map is execution-context shared by all detectors; between
        # runs every tracked fd table is dead anyway.
        _FD_FILES.clear()

    def check(self) -> list[RaceFinding]:
        """All findings, including teardown-only ones (torn commits)."""
        findings = list(self.findings)
        for pend in self._pending.values():
            if _site_suppressed("torn-commit", pend.site):
                continue
            findings.append(
                RaceFinding(
                    "torn-commit",
                    pend.path,
                    f"torn commit: {pend.actor.describe()} wrote flow spec {pend.name!r} "
                    f"({pend.path!r}) at {pend.site} while the flow was at version "
                    f"{pend.version}, but never incremented 'version' — the switch will "
                    "never see the change (§3.4)",
                    actors=(pend.actor.describe(),),
                    sites=(pend.site,),
                )
            )
        return findings

    # -- clock plumbing ------------------------------------------------------------

    def _actor_for(self, sc: Syscalls) -> Actor:
        # Every process-owned context is its own actor.  Bare contexts
        # (owner_pid == 0: the test harness, shells, ad-hoc Syscalls) all
        # collapse into ONE sequential "harness" actor — a test body using
        # three credential hats is still a single thread of control, not
        # three concurrent processes.
        if not getattr(sc, "owner_pid", 0):
            return self._harness_actor()
        aid = id(sc)
        actor = self._actors.get(aid)
        if actor is None:
            actor = Actor(aid, sc)
            actor.clock.merge(self._barrier)
            # Birth edge: everything the orchestrator did before this
            # process's first syscall is program-order-before it (the
            # harness only runs while the simulator is parked).
            harness = self._actors.get(_HARNESS_AID)
            if harness is not None:
                actor.clock.merge(harness.clock)
            actor.barrier_epoch = self._barrier_epoch
            self._actors[aid] = actor
        elif actor.barrier_epoch != self._barrier_epoch:
            actor.clock.merge(self._barrier)
            actor.barrier_epoch = self._barrier_epoch
        return actor

    def _harness_actor(self) -> Actor:
        actor = self._actors.get(_HARNESS_AID)
        if actor is None:
            actor = Actor(_HARNESS_AID, None)
            actor.clock.merge(self._barrier)
            actor.barrier_epoch = self._barrier_epoch
            self._actors[_HARNESS_AID] = actor
        elif actor.barrier_epoch != self._barrier_epoch:
            actor.clock.merge(self._barrier)
            actor.barrier_epoch = self._barrier_epoch
        return actor

    def publish_barrier(self) -> None:
        """Join every actor's clock (a simulator-quiescence sync point).

        Actors acquire the join lazily on their next access, so an idle
        actor costs nothing.
        """
        for actor in self._actors.values():
            self._barrier.merge(actor.clock)
        self._barrier_epoch += 1

    def _caller_actor(self, previous: "Syscalls | None") -> Actor | None:
        """Who synchronously invoked the current syscall, if knowable.

        Inside a simulator window with no process scope (raw scheduled
        events, dataplane plumbing) the invoker is unknown — return None
        rather than inventing an edge.
        """
        if previous is not None:
            return self._actor_for(previous)
        if _RUN_DEPTH == 0:
            return self._harness_actor()
        return None

    def _on_syscall_enter(self, sc: Syscalls, previous: "Syscalls | None") -> Actor:
        """Per-syscall prologue: resolve the actor, apply scope edges."""
        actor = self._actor_for(sc)
        # Synchronous-call edge, caller -> callee: when one context drives
        # another's syscalls in its own control flow (the harness using a
        # process's client, a shell running as root), the call is in the
        # caller's program order.
        caller = self._caller_actor(previous)
        if caller is not None and caller is not actor:
            actor.clock.merge(caller.clock)
        if _ORIGIN_STACK:
            origin = _ORIGIN_STACK[-1].get(id(self))
            if origin is not None:
                clock, merged = origin
                if actor.aid not in merged:
                    actor.clock.merge(clock)
                    merged.add(actor.aid)
        if _RPC_STACK:
            state = _RPC_STACK[-1].get(id(self))
            if state is not None:
                sender, snap, responders, merged = state
                if actor is not sender and actor.aid not in merged:
                    if snap is not None:
                        actor.clock.merge(snap)
                    merged.add(actor.aid)
                    responders.append(actor)
        return actor

    def _on_syscall_leave(self, sc: Syscalls, previous: "Syscalls | None") -> None:
        """Per-syscall epilogue: callee -> caller, the return edge of a
        synchronous call (the caller resumes having observed its effects)."""
        actor = self._actor_for(sc)
        caller = self._caller_actor(previous)
        if caller is not None and caller is not actor:
            caller.clock.merge(actor.clock)

    def _snapshot_scope(self):
        """Clock captured at task-creation time (the scheduling edge)."""
        if _CURRENT_SC is None:
            return None
        return (self._actor_for(_CURRENT_SC).clock.snapshot(), set())

    def _rpc_send_state(self):
        if _CURRENT_SC is None:
            return (None, None, [], set())
        sender = self._actor_for(_CURRENT_SC)
        return (sender, sender.clock.snapshot(), [], set())

    def _rpc_recv_state(self, state) -> None:
        sender, _snap, responders, _merged = state
        if sender is None:
            return
        for responder in responders:
            sender.clock.merge(responder.clock)

    def _cancel_pending(self, sc: Syscalls, inode: FileInode) -> None:
        """A spec write was rolled back (validation failure on close)."""
        actor = self._actor_for(sc)
        for parent, _name in inode.dentries:
            if isinstance(parent, FlowNode):
                self._pending.pop((id(parent), actor.aid), None)

    def _note_publish(self, sc: Syscalls, node: object) -> None:
        """rename target: record the publisher's clock on the object."""
        entry = self._published.get(id(node))
        if entry is None:
            entry = (node, VectorClock())
            self._published[id(node)] = entry
        entry[1].merge(self._actor_for(sc).clock)

    def _on_spawn(self, parent_sc: Syscalls, child_sc: Syscalls) -> None:
        """fork(2) edge: the child starts with the parent's clock."""
        self._actor_for(child_sc).clock.merge(self._actor_for(parent_sc).clock)

    def _note_delivery(self, instance: object) -> None:
        """An event was delivered (or coalesced) into an inotify queue."""
        if _CURRENT_SC is None:
            return
        actor = self._actor_for(_CURRENT_SC)
        entry = self._inbox.get(id(instance))
        if entry is None:
            entry = (instance, VectorClock())
            self._inbox[id(instance)] = entry
        entry[1].merge(actor.clock)

    def _acquire_instance(self, sc: Syscalls, instance: object) -> None:
        """inotify_read: the reader acquires its emitters' clocks."""
        entry = self._inbox.get(id(instance))
        if entry is not None:
            self._actor_for(sc).clock.merge(entry[1])

    def _acquire_ready(self, sc: Syscalls, ep: object) -> None:
        """epoll_wait: acquire the clock of every ready descriptor."""
        actor = self._actor_for(sc)
        for pollable in ep.pollables():
            if not pollable.readable():
                continue
            entry = self._inbox.get(id(pollable))
            if entry is not None:
                actor.clock.merge(entry[1])

    # -- the shadow-state core -------------------------------------------------------

    def _record_access(self, sc: Syscalls, inode: FileInode, path: str, *, write: bool) -> None:
        flow = None
        fname = ""
        actor = self._actor_for(sc)
        publication = self._published.get(id(inode))
        if publication is not None:
            actor.clock.merge(publication[1])
        for parent, name in inode.dentries:
            if isinstance(parent, CountersDir):
                return  # lossy-by-design monitoring state (§3.5)
            if isinstance(parent, FlowNode):
                flow, fname = parent, name
            # Reaching a file inside an atomically-published (renamed)
            # directory acquires the publication — the maildir contract.
            publication = self._published.get(id(parent))
            if publication is not None:
                actor.clock.merge(publication[1])
        if flow is not None and fname == "version" and not write:
            # The version file is the synchronization variable (§3.4):
            # reading it acquires the last committer's released clock
            # *before* the race check, so observing a commit orders the
            # reader after it.  Concurrent committers who never saw each
            # other's increment still conflict below (a real lost update).
            released = self._commit_clocks.get(id(inode))
            if released is not None:
                actor.clock.merge(released[1])
        key = id(inode)
        entry = self._shadow.get(key)
        if entry is None:
            entry = (inode, deque(maxlen=self.history))
            self._shadow[key] = entry
        hist = entry[1]
        site = None
        for access in hist:
            if access.actor is actor:
                continue
            if not (write or access.write):
                continue  # read/read never conflicts
            if actor.clock.covers(access.actor.aid, access.tick):
                continue
            if site is None:
                site = _call_site()
            self._report_race(actor, access, path, site, write)
        if site is None:
            site = _call_site()
        tick = actor.clock.tick(actor.aid)
        last = hist[-1] if hist else None
        if last is not None and last.actor is actor and last.write == write:
            # Same actor repeating the same kind of access: advance the
            # record instead of growing history (the newer tick subsumes
            # the older one for every future HB check).
            last.tick = tick
            last.site = site
        else:
            hist.append(_Access(actor, tick, write, site))
        if flow is not None:
            self._flow_protocol(actor, flow, fname, inode, path, write, site, tick)

    def _report_race(self, actor: Actor, access: _Access, path: str, site: str, write: bool) -> None:
        dedup = ("race", path, access.site, site)
        if dedup in self._seen:
            return
        self._seen.add(dedup)
        if _site_suppressed("race", site, access.site):
            return
        kind_then = "write" if access.write else "read"
        kind_now = "write" if write else "read"
        other = access.actor
        self.findings.append(
            RaceFinding(
                "race",
                path,
                f"unsynchronized {kind_then}/{kind_now} on {path!r}: "
                f"{other.describe()} at {access.site} and {actor.describe()} at {site} "
                "have no happens-before edge (no notify delivery, version "
                "acquire, scheduling, or RPC orders them)",
                actors=(other.describe(), actor.describe()),
                sites=(access.site, site),
            )
        )

    # -- §3.4 commit-protocol model checking -------------------------------------------

    def _flow_protocol(self, actor: Actor, flow: FlowNode, fname: str, inode: FileInode, path: str, write: bool, site: str, tick: int) -> None:
        if fname == "version":
            if write:
                # Commit: release the committer's clock (covers this
                # write's tick) and retire every pending spec write the
                # committer has observed — its own, or one HB-ordered
                # before the increment (the commit covers those too).
                self._commit_clocks[id(inode)] = (inode, actor.clock.snapshot())
                for key, pend in list(self._pending.items()):
                    if key[0] != id(flow):
                        continue
                    if pend.actor is actor or actor.clock.covers(pend.actor.aid, pend.tick):
                        del self._pending[key]
            # The read-side acquire happened in _record_access, before the
            # race check — the version file is the sync variable itself.
            return
        if not (fname in _FLOW_SPEC_NAMES or fname.startswith(("match.", "action."))):
            return
        if write:
            if _current_version(flow) > 0:
                self._pending.setdefault(
                    (id(flow), actor.aid),
                    _PendingSpec(flow, fname, path, site, actor, tick, _current_version(flow)),
                )
            return
        for (fid, aid), pend in self._pending.items():
            if fid != id(flow) or aid == actor.aid:
                continue
            if actor.clock.covers(pend.actor.aid, pend.tick):
                # The reader is HB-ordered after the spec write: it can
                # observe the mid-commit state coherently (e.g. a driver
                # that re-reads and version-guards).  Only *concurrent*
                # reads of uncommitted state are protocol violations.
                continue
            dedup = ("uncommitted", pend.site, site)
            if dedup in self._seen:
                continue
            self._seen.add(dedup)
            if _site_suppressed("uncommitted-read", site, pend.site):
                continue
            self.findings.append(
                RaceFinding(
                    "uncommitted-read",
                    path,
                    f"read of uncommitted flow state: {actor.describe()} read {path!r} "
                    f"at {site} while {pend.actor.describe()} holds an uncommitted spec "
                    f"write to {pend.name!r} (at {pend.site}; version still "
                    f"{pend.version}, §3.4)",
                    actors=(actor.describe(), pend.actor.describe()),
                    sites=(site, pend.site),
                )
            )


# -- module-level execution context and patching ----------------------------------

#: Active detectors; the patched choke points fan out to each of these.
_DETECTORS: list[RaceDetector] = []
#: The Syscalls instance currently inside a patched call (or the process
#: scope established by a dispatch/guarded run); emissions attribute here.
_CURRENT_SC: Syscalls | None = None
#: (id(sc), fd) -> (inode, path): which file each tracked descriptor names.
_FD_FILES: dict[tuple[int, int], tuple[FileInode, str]] = {}
#: Scheduling-edge scopes: per-detector creation-time clock snapshots,
#: pushed for the duration of a guarded Process task run.
_ORIGIN_STACK: list[dict] = []
#: In-flight RPC calls: per-detector (sender, snapshot, responders, merged).
_RPC_STACK: list[dict] = []
#: Simulator.run nesting depth: 0 means the harness itself is executing.
_RUN_DEPTH = 0
_patched = False


def _enter(sc: Syscalls) -> "Syscalls | None":
    global _CURRENT_SC
    previous = _CURRENT_SC
    _CURRENT_SC = sc
    for det in _DETECTORS:
        det._on_syscall_enter(sc, previous)
    return previous


def _leave(sc: Syscalls, previous: "Syscalls | None") -> None:
    global _CURRENT_SC
    _CURRENT_SC = previous
    for det in _DETECTORS:
        det._on_syscall_leave(sc, previous)


def _patch_once() -> None:
    global _patched
    if _patched:
        return
    _patched = True

    from repro.distfs import rpc as rpc_mod
    from repro.proc.process import Process
    from repro.sim.clock import Simulator
    from repro.vfs import notify as notify_mod

    orig_open = Syscalls.open
    orig_close = Syscalls.close
    orig_read = Syscalls.read
    orig_write = Syscalls.write
    orig_pread = Syscalls.pread
    orig_pwrite = Syscalls.pwrite
    orig_ftruncate = Syscalls.ftruncate
    orig_truncate = Syscalls.truncate
    orig_inotify_read = Syscalls.inotify_read
    orig_epoll_wait = Syscalls.epoll_wait
    orig_spawn = Syscalls.spawn
    orig_guarded = Process._guarded
    orig_dispatch = Process._dispatch
    orig_run = Simulator.run
    orig_run_until = Simulator.run_until

    def patched_open(self: Syscalls, path: str, flags: int = O_RDONLY, mode: int = 0o644) -> int:
        if not _DETECTORS:
            return orig_open(self, path, flags, mode)
        previous = _enter(self)
        try:
            fd = orig_open(self, path, flags, mode)
            handle = self._fds.get(fd)
            if handle is not None and isinstance(handle.inode, FileInode):
                abspath = self._abspath(path)
                _FD_FILES[(id(self), fd)] = (handle.inode, abspath)
                if flags & O_TRUNC and handle.writable:
                    for det in _DETECTORS:
                        det._record_access(self, handle.inode, abspath, write=True)
            return fd
        finally:
            _leave(self, previous)

    def patched_close(self: Syscalls, fd: int) -> None:
        if not _DETECTORS:
            return orig_close(self, fd)
        previous = _enter(self)
        entry = _FD_FILES.get((id(self), fd))
        try:
            return orig_close(self, fd)
        except FsError:
            # close-time validation rejected the write and rolled the file
            # back: the spec change never became durable, so it cannot owe
            # a version increment.
            if entry is not None:
                for det in _DETECTORS:
                    det._cancel_pending(self, entry[0])
            raise
        finally:
            _FD_FILES.pop((id(self), fd), None)
            _leave(self, previous)

    def _fd_access(sc: Syscalls, fd: int, *, write: bool) -> None:
        entry = _FD_FILES.get((id(sc), fd))
        if entry is not None:
            for det in _DETECTORS:
                det._record_access(sc, entry[0], entry[1], write=write)

    def patched_read(self: Syscalls, fd: int, size: int = -1) -> bytes:
        if not _DETECTORS:
            return orig_read(self, fd, size)
        previous = _enter(self)
        try:
            data = orig_read(self, fd, size)
            _fd_access(self, fd, write=False)
            return data
        finally:
            _leave(self, previous)

    def patched_write(self: Syscalls, fd: int, data: bytes) -> int:
        if not _DETECTORS:
            return orig_write(self, fd, data)
        previous = _enter(self)
        try:
            result = orig_write(self, fd, data)
            _fd_access(self, fd, write=True)
            return result
        finally:
            _leave(self, previous)

    def patched_pread(self: Syscalls, fd: int, size: int, offset: int) -> bytes:
        if not _DETECTORS:
            return orig_pread(self, fd, size, offset)
        previous = _enter(self)
        try:
            data = orig_pread(self, fd, size, offset)
            _fd_access(self, fd, write=False)
            return data
        finally:
            _leave(self, previous)

    def patched_pwrite(self: Syscalls, fd: int, data: bytes, offset: int) -> int:
        if not _DETECTORS:
            return orig_pwrite(self, fd, data, offset)
        previous = _enter(self)
        try:
            result = orig_pwrite(self, fd, data, offset)
            _fd_access(self, fd, write=True)
            return result
        finally:
            _leave(self, previous)

    def patched_ftruncate(self: Syscalls, fd: int, size: int) -> None:
        if not _DETECTORS:
            return orig_ftruncate(self, fd, size)
        previous = _enter(self)
        try:
            orig_ftruncate(self, fd, size)
            _fd_access(self, fd, write=True)
        finally:
            _leave(self, previous)

    def patched_truncate(self: Syscalls, path: str, size: int) -> None:
        if not _DETECTORS:
            return orig_truncate(self, path, size)
        previous = _enter(self)
        try:
            orig_truncate(self, path, size)
            abspath = self._abspath(path)
            inode = self.vfs.resolve(self.ns, self.cred, abspath)
            if isinstance(inode, FileInode):
                for det in _DETECTORS:
                    det._record_access(self, inode, abspath, write=True)
        finally:
            _leave(self, previous)

    def patched_inotify_read(self: Syscalls, instance):
        if not _DETECTORS:
            return orig_inotify_read(self, instance)
        previous = _enter(self)
        try:
            events = orig_inotify_read(self, instance)
            for det in _DETECTORS:
                det._acquire_instance(self, instance)
            return events
        finally:
            _leave(self, previous)

    def patched_epoll_wait(self: Syscalls, ep):
        if not _DETECTORS:
            return orig_epoll_wait(self, ep)
        previous = _enter(self)
        try:
            ready = orig_epoll_wait(self, ep)
            for det in _DETECTORS:
                det._acquire_ready(self, ep)
            return ready
        finally:
            _leave(self, previous)

    orig_rename = Syscalls.rename

    def patched_rename(self: Syscalls, old: str, new: str):
        if not _DETECTORS:
            return orig_rename(self, old, new)
        previous = _enter(self)
        try:
            result = orig_rename(self, old, new)
            # rename is the atomic-publish operation (maildir): record the
            # publisher's clock on the target so later accesses through
            # the new name acquire everything done before publication.
            try:
                node = self.vfs.resolve(self.ns, self.cred, self._abspath(new))
            except FsError:
                node = None
            if node is not None:
                for det in _DETECTORS:
                    det._note_publish(self, node)
            return result
        finally:
            _leave(self, previous)

    def patched_spawn(self: Syscalls, **kwargs):
        child = orig_spawn(self, **kwargs)
        for det in _DETECTORS:
            det._on_spawn(self, child)
        return child

    def patched_guarded(self: Process, fn):
        run = orig_guarded(self, fn)
        # The scheduling edge: capture the creating scope's clock now so
        # the eventual run (cron job, periodic task, one-shot) acquires it.
        origins = {id(det): det._snapshot_scope() for det in _DETECTORS}

        def guarded_run() -> None:
            if not _DETECTORS:
                return run()
            global _CURRENT_SC
            previous = _CURRENT_SC
            if self.sc is not None:
                _CURRENT_SC = self.sc
            _ORIGIN_STACK.append(origins)
            try:
                return run()
            finally:
                _ORIGIN_STACK.pop()
                _CURRENT_SC = previous

        return guarded_run

    def patched_dispatch(self: Process) -> None:
        if not _DETECTORS:
            return orig_dispatch(self)
        global _CURRENT_SC
        previous = _CURRENT_SC
        if self.sc is not None:
            _CURRENT_SC = self.sc
        try:
            return orig_dispatch(self)
        finally:
            _CURRENT_SC = previous

    def patched_run(self: Simulator, max_events: int = 1_000_000) -> int:
        if not _DETECTORS:
            return orig_run(self, max_events)
        global _RUN_DEPTH
        for det in _DETECTORS:
            det.publish_barrier()
        _RUN_DEPTH += 1
        try:
            return orig_run(self, max_events)
        finally:
            _RUN_DEPTH -= 1
            for det in _DETECTORS:
                det.publish_barrier()

    def patched_run_until(self: Simulator, deadline: float, max_events: int = 1_000_000) -> int:
        if not _DETECTORS:
            return orig_run_until(self, deadline, max_events)
        global _RUN_DEPTH
        for det in _DETECTORS:
            det.publish_barrier()
        _RUN_DEPTH += 1
        try:
            return orig_run_until(self, deadline, max_events)
        finally:
            _RUN_DEPTH -= 1
            for det in _DETECTORS:
                det.publish_barrier()

    def notify_tap(instance, _event) -> None:
        if not _DETECTORS or _CURRENT_SC is None:
            return
        for det in _DETECTORS:
            det._note_delivery(instance)

    def rpc_tap(phase: str, _channel) -> None:
        if phase == "send":
            _RPC_STACK.append({id(det): det._rpc_send_state() for det in _DETECTORS})
        elif _RPC_STACK:
            frame = _RPC_STACK.pop()
            for det in _DETECTORS:
                state = frame.get(id(det))
                if state is not None:
                    det._rpc_recv_state(state)

    Syscalls.open = patched_open  # type: ignore[method-assign]
    Syscalls.close = patched_close  # type: ignore[method-assign]
    Syscalls.read = patched_read  # type: ignore[method-assign]
    Syscalls.write = patched_write  # type: ignore[method-assign]
    Syscalls.pread = patched_pread  # type: ignore[method-assign]
    Syscalls.pwrite = patched_pwrite  # type: ignore[method-assign]
    Syscalls.ftruncate = patched_ftruncate  # type: ignore[method-assign]
    Syscalls.truncate = patched_truncate  # type: ignore[method-assign]
    Syscalls.rename = patched_rename  # type: ignore[method-assign]
    Syscalls.inotify_read = patched_inotify_read  # type: ignore[method-assign]
    Syscalls.epoll_wait = patched_epoll_wait  # type: ignore[method-assign]
    Syscalls.spawn = patched_spawn  # type: ignore[method-assign]
    Process._guarded = patched_guarded  # type: ignore[method-assign]
    Process._dispatch = patched_dispatch  # type: ignore[method-assign]
    Simulator.run = patched_run  # type: ignore[method-assign]
    Simulator.run_until = patched_run_until  # type: ignore[method-assign]

    # Namespace mutators need no shadow record (directory ops are atomic
    # in the kernel, like a concurrent map), but must set the current
    # actor so the notify events they emit carry the mutator's clock.
    for method_name in (
        "mkdir",
        "rmdir",
        "unlink",
        "symlink",
        "link",
        "chmod",
        "chown",
        "set_acl",
        "setxattr",
        "removexattr",
    ):
        orig_method = getattr(Syscalls, method_name)

        def _make_scoped(orig):
            def patched(self: Syscalls, *args, **kwargs):
                if not _DETECTORS:
                    return orig(self, *args, **kwargs)
                previous = _enter(self)
                try:
                    return orig(self, *args, **kwargs)
                finally:
                    _leave(self, previous)

            return patched

        setattr(Syscalls, method_name, _make_scoped(orig_method))

    notify_mod.add_delivery_tap(notify_tap)
    rpc_mod.add_call_tap(rpc_tap)


# -- environment opt-in ---------------------------------------------------------

_env_detector: RaceDetector | None = None


def enabled() -> bool:
    """True when the YANCRACE environment variable requests the detector."""
    return os.environ.get("YANCRACE", "") not in ("", "0")


def install_from_env() -> RaceDetector | None:
    """Install the process-wide detector if YANCRACE is set; idempotent."""
    global _env_detector
    if not enabled():
        return None
    if _env_detector is None:
        _env_detector = RaceDetector().install()
    return _env_detector


def active() -> RaceDetector | None:
    """The environment-installed detector, if any."""
    return _env_detector


def reset_all() -> None:
    """Reset every active detector (test-isolation helper)."""
    for det in _DETECTORS:
        det.reset()
