"""F2 — regenerate figure 2: the /net hierarchy.

The live tree, rendered by the shell's ``tree``, must show the figure's
structure: hosts/, switches/ (sw1, sw2), views/ with a nested view whose
own hosts/switches/views exist.
"""

from repro.runtime import ControllerHost
from repro.shell import Shell
from repro.sim import Simulator


def _build_figure2_host() -> ControllerHost:
    host = ControllerHost(Simulator())
    sc = host.root_sc
    sc.mkdir("/net/switches/sw1")
    sc.mkdir("/net/switches/sw2")
    sc.mkdir("/net/views/http")
    sc.mkdir("/net/views/management-net")
    return host


def test_figure2_structure_matches_paper(benchmark):
    host = _build_figure2_host()
    shell = Shell(host.root_sc)
    rendered = benchmark(shell.run, "tree /net -L 2")
    print("\n=== Figure 2: the yanc file system hierarchy (live render) ===")
    print(rendered)
    lines = rendered.splitlines()
    assert lines[0] == "/net"
    # depth-1: exactly hosts, switches, views
    depth1 = [l.split(" ")[-1] for l in lines if l.startswith(("├── ", "└── "))]
    assert depth1 == ["hosts", "switches", "views"]
    # switches holds sw1, sw2
    assert any(l.endswith("sw1") for l in lines)
    assert any(l.endswith("sw2") for l in lines)
    # views holds the two views of the figure
    assert any(l.endswith("http") for l in lines)
    assert any(l.endswith("management-net") for l in lines)


def test_figure2_nested_view_replicates_structure(benchmark):
    host = _build_figure2_host()
    listing = benchmark(host.root_sc.listdir, "/net/views/management-net")
    assert listing == ["hosts", "switches", "views"]
    assert host.root_sc.listdir("/net") == ["hosts", "switches", "views"]
