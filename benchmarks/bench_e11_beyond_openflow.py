"""E11 — §7: beyond OpenFlow (extension experiments).

Two forward-looking claims of the paper, measured:

* §7.1 "Network controller, or network device?" — a device that runs yanc
  itself over the distributed FS needs no OpenFlow at all; its control
  latency is the poll interval, vs the central driver's notify+channel
  latency.
* §7.2 "Extending to Middleboxes" — `mv` of a state directory migrates a
  live NAT binding; the service interruption window is the driver's event
  turnaround, not a bespoke protocol handshake.
"""

from conftest import print_table

from repro.dataplane import Match, Output, build_linear
from repro.dataplane.host import HostSim
from repro.dataplane.link import Link
from repro.distfs import DeviceRuntime, FileServer
from repro.middlebox import MiddleboxDriver, NatMiddlebox
from repro.netpkt import MacAddress, ip
from repro.runtime import ControllerHost, YancController
from repro.shell import Shell
from repro.sim import Simulator


def _flow_apply_latency_central() -> float:
    ctl = YancController(build_linear(1)).start()
    yc = ctl.client()
    switch = ctl.net.switches["sw1"]
    start = ctl.sim.now
    yc.create_flow("sw1", "probe", Match(dl_vlan=1), [Output(1)], priority=5)
    while len(switch.table) == 0 and ctl.sim.now < start + 5:
        ctl.run(0.0005)
    return ctl.sim.now - start


def _flow_apply_latency_device(poll_interval: float) -> float:
    net = build_linear(1)
    master = ControllerHost(net.sim)
    DeviceRuntime(list(net.switches.values())[0], master, poll_interval=poll_interval).start()
    net.run(3 * poll_interval)
    yc = master.client()
    switch = net.switches["sw1"]
    start = net.sim.now
    yc.create_flow("sw1", "probe", Match(dl_vlan=1), [Output(1)], priority=5)
    while len(switch.table) == 0 and net.sim.now < start + 10:
        net.run(0.0005)
    return net.sim.now - start


def test_device_vs_central_control_latency(benchmark):
    central = _flow_apply_latency_central()
    rows = [("central driver (notify + OpenFlow)", f"{central * 1e3:.2f} ms")]
    for interval in (0.02, 0.1, 0.5):
        device = _flow_apply_latency_device(interval)
        rows.append((f"on-device yanc, poll {interval * 1e3:.0f} ms", f"{device * 1e3:.2f} ms"))
    print_table("E11a: flow apply latency, central vs on-device control", ["control plane", "latency"], rows)
    latencies = [float(row[1].split()[0]) for row in rows]
    # event-driven central control beats slow polls; a fast-polling device
    # is competitive (bounded by poll/2 on average, poll in the worst case)
    assert latencies[0] < latencies[-1]
    assert latencies[1] < 3 * max(latencies[0], 20.0)
    benchmark(_flow_apply_latency_central)


def _nat_world():
    sim = Simulator()
    host = ControllerHost(sim)
    client = HostSim("client", MacAddress(0x01), ip("192.168.1.10"), sim)
    server = HostSim("server", MacAddress(0x02), ip("8.8.8.8"), sim)
    nat1 = NatMiddlebox("nat1", "203.0.113.1", sim)
    nat2 = NatMiddlebox("nat2", "203.0.113.1", sim)
    for a, b in ((client, nat1.inside), (nat1.outside, server)):
        link = Link(sim, a, b)
        a.link = link
        b.link = link
    client.arp_table[server.ip] = server.mac
    server.arp_table[ip("203.0.113.1")] = client.mac
    driver = MiddleboxDriver(host.root_sc.spawn(), sim)
    driver.attach(nat1)
    driver.attach(nat2)
    return sim, host, client, server, nat1, nat2, driver


def test_mv_migration_window(benchmark):
    sim, host, client, server, nat1, nat2, driver = _nat_world()
    client.send_udp(server.ip, 5555, 53, b"warm")
    sim.run_for(0.2)
    public_port = server.udp_received[-1][1].src_port
    shell = Shell(host.root_sc)
    conn = host.root_sc.listdir("/net/middleboxes/nat1/state")[0]
    start = sim.now
    shell.run(f"mv /net/middleboxes/nat1/state/{conn} /net/middleboxes/nat2/state/{conn}")
    # the window closes when nat2 holds the binding
    while nat2.lookup_conn(conn) is None and sim.now < start + 5:
        sim.run_for(0.0005)
    window = sim.now - start
    moved = nat2.lookup_conn(conn)
    print_table(
        "E11b: live NAT-binding migration via mv",
        ["metric", "value"],
        [
            ("migration window", f"{window * 1e3:.2f} ms"),
            ("public port before", public_port),
            ("public port after", moved.public_port if moved else "LOST"),
            ("nat1 residual bindings", len(nat1.entries())),
        ],
    )
    assert moved is not None and moved.public_port == public_port
    assert nat1.entries() == []
    assert window < 0.01  # one driver event turnaround, not a protocol
    assert driver.migrations_in == 1
    benchmark(lambda: host.root_sc.listdir("/net/middleboxes/nat2/state"))


def test_state_readable_with_coreutils(benchmark):
    """§7.2's 'standardized protocol' is just files: grep the NAT table."""
    sim, host, client, server, _nat1, _nat2, _driver = _nat_world()
    client.send_udp(server.ip, 5555, 53, b"q")
    sim.run_for(0.2)
    shell = Shell(host.root_sc)
    out = shell.run("grep -r 192.168.1.10 /net/middleboxes/nat1/state")
    print("\n$ grep -r 192.168.1.10 /net/middleboxes/nat1/state")
    print(out)
    assert "client_ip:192.168.1.10" in out
    benchmark(shell.run, "grep -r -l udp /net/middleboxes/nat1/state")
