"""F3 — regenerate figure 3: switch and flow directory layouts.

A live switch directory must contain exactly the figure's children
(counters/ flows/ ports/ actions capabilities id num_buffers — plus the
events/ buffer tree of §3.5 and this repo's packet_out spool), and a
committed ARP flow must contain the figure's files.
"""

from repro.dataplane import FLOOD, Match, Output, build_linear
from repro.runtime import YancController
from repro.shell import Shell

FIGURE3_SWITCH_CHILDREN = {"counters", "flows", "ports", "actions", "capabilities", "id", "num_buffers"}
FIGURE3_FLOW_FILES = {"counters", "match.dl_type", "match.dl_src", "action.out", "priority", "timeout", "version"}


def _controller() -> YancController:
    ctl = YancController(build_linear(2)).start()
    yc = ctl.client()
    yc.create_flow(
        "sw1",
        "arp_flow",
        Match(dl_type=0x0806, dl_src="02:00:00:00:00:01"),
        [Output(FLOOD)],
        priority=100,
        idle_timeout=30,
    )
    ctl.run(0.2)
    return ctl


def test_figure3_switch_layout(benchmark):
    ctl = _controller()
    listing = set(benchmark(ctl.host.root_sc.listdir, "/net/switches/sw1"))
    print("\n=== Figure 3 (left): switch directory ===")
    print(Shell(ctl.host.root_sc).run("tree /net/switches/sw1 -L 1"))
    assert FIGURE3_SWITCH_CHILDREN <= listing
    extra = listing - FIGURE3_SWITCH_CHILDREN
    assert extra <= {"events", "packet_out"}  # documented additions


def test_figure3_flow_layout(benchmark):
    ctl = _controller()
    listing = set(benchmark(ctl.host.root_sc.listdir, "/net/switches/sw1/flows/arp_flow"))
    print("\n=== Figure 3 (right): flow directory ===")
    print(Shell(ctl.host.root_sc).run("tree /net/switches/sw1/flows/arp_flow"))
    assert listing == FIGURE3_FLOW_FILES
    assert set(ctl.host.root_sc.listdir("/net/switches/sw1/flows/arp_flow/counters")) == {
        "packet_count",
        "byte_count",
    }


def test_figure3_flow_readback(benchmark):
    """The directory parses back into exactly the committed flow."""
    ctl = _controller()
    yc = ctl.client()
    spec = benchmark(yc.read_flow, "sw1", "arp_flow")
    assert spec.match.dl_type == 0x0806
    assert spec.priority == 100
    assert spec.idle_timeout == 30
    assert spec.version == 1
