"""yancrace overhead benchmark: one fleet workload, detector off vs on.

Standalone runner (not part of the pytest-benchmark suite):

    PYTHONPATH=src python benchmarks/bench_race_overhead.py [--quick] [--out F]

The workload is the notify fan-out shape under the process runtime — a
driver delivers packet-in rounds to per-(app, switch) buffer directories
and N supervised processes consume each packet by reading it back and
publishing a digest file — so it exercises exactly the choke points the
detector instruments: open/read/write/close, inotify delivery, and epoll
wakeups.  The same workload runs twice (best of ``--reps`` each):

* **plain** — no detector installed (``YANCRACE`` off);
* **traced** — under an installed :class:`RaceDetector`.

Behavior must be identical (delivered events, digests published,
simulator events dispatched — all asserted), the traced run must be
race-clean (every read is ordered through notify delivery), and the
slowdown must stay under ``--max-ratio`` (default 3x).  Emits
``BENCH_race_overhead.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.analysis.race import RaceDetector
from repro.proc import Process, ProcessTable
from repro.sim import Simulator
from repro.vfs.notify import EventMask
from repro.vfs.syscalls import Syscalls
from repro.vfs.vfs import VirtualFileSystem

QUICK = {"apps": 3, "switches": 3, "rounds": 10}
FULL = {"apps": 6, "switches": 6, "rounds": 40}
ROUND_GAP = 0.01  # s between delivery bursts — far beyond the wakeup latency


class ConsumerApp(Process):
    """Reads every delivered packet and publishes a digest next to it."""

    def __init__(self, ctx, sim, index: int, n_switches: int) -> None:
        super().__init__(ctx, sim, name=f"app{index}")
        self.index = index
        self.n_switches = n_switches
        self.consumed = 0

    def on_start(self) -> None:
        for j in range(self.n_switches):
            # IN_CLOSE_WRITE, not IN_CREATE: the create event fires before
            # the packet's bytes land, so reading on it races the writer
            # (and yancrace says so); close-write is the publication edge.
            self.watch(f"/bufs/app{self.index}/sw{j}", EventMask.IN_CLOSE_WRITE, ("buf", j))

    def on_event(self, ctx, event) -> None:
        if event.name.startswith("digest-"):
            return
        _buf, j = ctx
        path = f"/bufs/app{self.index}/sw{j}/{event.name}"
        payload = self.sc.read_text(path)
        self.sc.write_text(f"/bufs/app{self.index}/sw{j}/digest-{event.name}", str(len(payload)))
        self.consumed += 1


def run_workload(cfg: dict) -> dict:
    sim = Simulator()
    vfs = VirtualFileSystem(clock=lambda: sim.now)
    sc = Syscalls(vfs)
    table = ProcessTable(sc, sim)
    for i in range(cfg["apps"]):
        for j in range(cfg["switches"]):
            sc.makedirs(f"/bufs/app{i}/sw{j}")
    apps = [ConsumerApp(table.spawn(), sim, i, cfg["switches"]).start() for i in range(cfg["apps"])]

    def deliver(round_no: int) -> None:
        for i in range(cfg["apps"]):
            for j in range(cfg["switches"]):
                sc.write_text(f"/bufs/app{i}/sw{j}/pkt{round_no}", "miss " * (round_no % 7 + 1))

    for r in range(cfg["rounds"]):
        sim.schedule((r + 1) * ROUND_GAP, lambda r=r: deliver(r))
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    digests = sum(
        1
        for i in range(cfg["apps"])
        for j in range(cfg["switches"])
        for name in sc.listdir(f"/bufs/app{i}/sw{j}")
        if name.startswith("digest-")
    )
    return {
        "consumed": sum(a.consumed for a in apps),
        "digests": digests,
        "sim_events": sim.dispatched,
        "wall_s": wall,
    }


def _best_of(reps: int, cfg: dict) -> dict:
    runs = [run_workload(cfg) for _ in range(reps)]
    best = min(runs, key=lambda r: r["wall_s"])
    for other in runs:  # behavior must not vary between repetitions either
        assert other["consumed"] == best["consumed"] and other["digests"] == best["digests"]
    return best


def run(quick: bool, reps: int) -> dict:
    cfg = QUICK if quick else FULL
    expected = cfg["apps"] * cfg["switches"] * cfg["rounds"]

    plain = _best_of(reps, cfg)

    detector = RaceDetector().install()
    try:
        traced = _best_of(reps, cfg)
        findings = detector.check()
    finally:
        detector.uninstall()
        detector.reset()

    assert plain["consumed"] == traced["consumed"] == expected, (
        f"behavior parity broken: plain={plain['consumed']} traced={traced['consumed']} expected={expected}"
    )
    assert plain["digests"] == traced["digests"] == expected
    assert plain["sim_events"] == traced["sim_events"], (
        "the detector changed the simulation schedule: "
        f"{plain['sim_events']} vs {traced['sim_events']} events"
    )
    assert findings == [], "the workload must be race-clean:\n" + "\n".join(str(f) for f in findings)

    return {
        "benchmark": "race_overhead",
        "workload": (
            f"{cfg['rounds']} delivery rounds fanned out to {cfg['apps']} consumer "
            f"apps x {cfg['switches']} switch buffers, one digest published per packet"
        ),
        "quick": quick,
        "reps": reps,
        "consumed_each": expected,
        "behavior_parity": "identical consumed/digest/sim-event counts, detector off vs on",
        "race_findings": 0,
        "plain_wall_s": round(plain["wall_s"], 4),
        "traced_wall_s": round(traced["wall_s"], 4),
        "overhead_ratio": round(traced["wall_s"] / max(plain["wall_s"], 1e-9), 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller workload (CI smoke)")
    parser.add_argument("--reps", type=int, default=3, help="repetitions per mode (best taken)")
    parser.add_argument("--out", default="BENCH_race_overhead.json", help="output JSON path")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=3.0,
        help="fail (exit 1) if traced/plain wall-clock ratio exceeds this",
    )
    args = parser.parse_args(argv)
    result = run(quick=args.quick, reps=max(1, args.reps))
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))
    if args.max_ratio and result["overhead_ratio"] > args.max_ratio:
        print(
            f"overhead ratio {result['overhead_ratio']} > allowed {args.max_ratio}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
