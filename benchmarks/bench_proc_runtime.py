"""Process runtime benchmark: epoll-batched wakeups vs per-instance wakeups.

Standalone runner (not part of the pytest-benchmark suite):

    PYTHONPATH=src python benchmarks/bench_proc_runtime.py [--quick] [--out F]

The workload is E4's fan-out shape under the process runtime: a driver
delivers each packet-in round to one buffer directory per (app, switch)
pair, and N supervised application processes consume them.  Two schemes
consume the *same* delivery schedule:

* **epoll** — each app is a :class:`~repro.proc.process.Process`: all of
  its buffer watches share one inotify registered in one epoll set, so a
  delivery burst costs one scheduled wakeup per process;
* **per-instance** — the pre-runtime plumbing: one inotify instance per
  buffer, each with its own ``wakeup`` callback and pending-flag, so a
  burst costs one scheduled wakeup per *watch instance*.

Both schemes must deliver exactly the same number of events (asserted);
the figure of merit is simulator events dispatched for the wakeup
machinery, which the epoll scheme may never exceed.  Emits
``BENCH_proc_runtime.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.proc import ON_CRASH, ProcState, Process, ProcessTable
from repro.sim import Simulator
from repro.vfs.notify import EventMask
from repro.vfs.syscalls import Syscalls
from repro.vfs.vfs import VirtualFileSystem

QUICK = {"apps": 4, "switches": 4, "rounds": 5}
FULL = {"apps": 8, "switches": 8, "rounds": 20}
ROUND_GAP = 0.01  # s between delivery bursts — far beyond the wakeup latency


def _make_host():
    sim = Simulator()
    vfs = VirtualFileSystem(clock=lambda: sim.now)
    sc = Syscalls(vfs)
    table = ProcessTable(sc, sim)
    return sim, sc, table


def _make_buffers(sc: Syscalls, n_apps: int, n_switches: int) -> None:
    for i in range(n_apps):
        for j in range(n_switches):
            sc.makedirs(f"/bufs/app{i}/sw{j}")


def _schedule_deliveries(sim: Simulator, sc: Syscalls, n_apps: int, n_switches: int, rounds: int) -> int:
    """One simulator event per round writes every (app, switch) buffer."""

    def deliver(round_no: int) -> None:
        for i in range(n_apps):
            for j in range(n_switches):
                sc.write_bytes(f"/bufs/app{i}/sw{j}/pkt{round_no}", b"miss")

    for r in range(rounds):
        sim.schedule((r + 1) * ROUND_GAP, lambda r=r: deliver(r))
    return rounds  # writer events scheduled


class FanoutApp(Process):
    """One supervised process watching all of its per-switch buffers."""

    def __init__(self, ctx, sim, index: int, n_switches: int) -> None:
        super().__init__(ctx, sim, name=f"app{index}")
        self.index = index
        self.n_switches = n_switches
        self.received = 0

    def on_start(self) -> None:
        for j in range(self.n_switches):
            self.watch(f"/bufs/app{self.index}/sw{j}", EventMask.IN_CREATE, ("buf", j))

    def on_event(self, ctx, event) -> None:
        self.received += 1


class PerInstanceApp:
    """The deleted plumbing, rebuilt: one inotify + wakeup per buffer."""

    def __init__(self, sc: Syscalls, sim: Simulator, index: int, n_switches: int) -> None:
        self.sc = sc
        self.sim = sim
        self.received = 0
        self._instances = []
        for j in range(n_switches):
            ino = sc.inotify_init()
            sc.inotify_add_watch(ino, f"/bufs/app{index}/sw{j}", EventMask.IN_CREATE)
            pending = [False]

            def wake(ino=ino, pending=pending):
                if pending[0]:
                    return
                pending[0] = True
                self.sim.schedule(1e-5, lambda: self._drain(ino, pending))

            ino.wakeup = wake
            self._instances.append(ino)

    def _drain(self, ino, pending) -> None:
        pending[0] = False
        self.received += len(self.sc.inotify_read(ino))


def run_epoll(cfg: dict) -> dict:
    sim, sc, table = _make_host()
    _make_buffers(sc, cfg["apps"], cfg["switches"])
    apps = []
    for i in range(cfg["apps"]):
        app = FanoutApp(table.spawn(), sim, i, cfg["switches"])
        table.supervise(app, ON_CRASH)
        apps.append(app.start())
    writer_events = _schedule_deliveries(sim, sc, cfg["apps"], cfg["switches"], cfg["rounds"])
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    assert all(a.state is ProcState.BLOCKED for a in apps)
    return {
        "delivered": sum(a.received for a in apps),
        "sim_events": sim.dispatched,
        "wakeup_dispatches": sim.dispatched - writer_events,
        "wall_s": wall,
        "apps": apps,
        "table": table,
        "sim": sim,
        "sc": sc,
    }


def run_per_instance(cfg: dict) -> dict:
    sim, sc, table = _make_host()
    _make_buffers(sc, cfg["apps"], cfg["switches"])
    apps = [PerInstanceApp(table.root_sc.spawn(), sim, i, cfg["switches"]) for i in range(cfg["apps"])]
    writer_events = _schedule_deliveries(sim, sc, cfg["apps"], cfg["switches"], cfg["rounds"])
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return {
        "delivered": sum(a.received for a in apps),
        "sim_events": sim.dispatched,
        "wakeup_dispatches": sim.dispatched - writer_events,
        "wall_s": wall,
    }


def exercise_supervision(epoll_run: dict) -> dict:
    """Crash one supervised app mid-stream; it must come back on its own."""
    sim, sc, table = epoll_run["sim"], epoll_run["sc"], epoll_run["table"]
    victim = epoll_run["apps"][0]

    original = victim.on_event

    def faulty(ctx, event):
        victim.on_event = original
        raise RuntimeError("injected fault")

    victim.on_event = faulty
    sc.write_bytes(f"/bufs/app{victim.index}/sw0/boom", b"x")
    sim.run()
    sc.write_bytes(f"/bufs/app{victim.index}/sw0/after", b"x")
    sim.run()
    return {
        "crashes": victim.crashes,
        "restarts": victim.restarts,
        "state_after": victim.state.value,
        "events_after_restart": victim.received,
        "restart_counter": table.counters.get("proc.restarts"),
    }


def run(quick: bool) -> dict:
    cfg = QUICK if quick else FULL
    expected = cfg["apps"] * cfg["switches"] * cfg["rounds"]

    epoll = run_epoll(cfg)
    baseline = run_per_instance(cfg)

    assert epoll["delivered"] == baseline["delivered"] == expected, (
        f"delivery parity broken: epoll={epoll['delivered']} "
        f"baseline={baseline['delivered']} expected={expected}"
    )
    assert epoll["wakeup_dispatches"] <= baseline["wakeup_dispatches"], (
        "epoll-batched wakeups dispatched more simulator events than the "
        "per-instance baseline"
    )

    supervision = exercise_supervision(epoll)
    assert supervision["state_after"] == "blocked" and supervision["restarts"] >= 1

    return {
        "benchmark": "proc_runtime",
        "workload": (
            f"{cfg['rounds']} delivery rounds fanned out to "
            f"{cfg['apps']} supervised apps x {cfg['switches']} switch buffers"
        ),
        "quick": quick,
        "delivered_events_each": expected,
        "behavior_parity": "identical delivered-event counts, epoll vs per-instance",
        "epoll": {k: epoll[k] for k in ("sim_events", "wakeup_dispatches")},
        "per_instance": {k: baseline[k] for k in ("sim_events", "wakeup_dispatches")},
        "wakeup_dispatch_ratio": round(
            baseline["wakeup_dispatches"] / max(epoll["wakeup_dispatches"], 1), 2
        ),
        "wall_s_epoll": round(epoll["wall_s"], 4),
        "wall_s_per_instance": round(baseline["wall_s"], 4),
        "supervision": supervision,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller workload (CI smoke)")
    parser.add_argument("--out", default="BENCH_proc_runtime.json", help="output JSON path")
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.0,
        help="fail (exit 1) if baseline/epoll wakeup-dispatch ratio falls below this",
    )
    args = parser.parse_args(argv)
    result = run(quick=args.quick)
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))
    if args.min_ratio and result["wakeup_dispatch_ratio"] < args.min_ratio:
        print(
            f"ratio {result['wakeup_dispatch_ratio']} < required {args.min_ratio}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
