"""E7 — §5.2: fsnotify-based monitoring "comes free".

Paper design: applications monitor the tree with inotify/fanotify; "use of
the *notify systems comes free, requiring no additional lines of code to
the yanc file system."

Reproduced shape: event delivery is cheap and O(watchers-on-that-inode);
unrelated watches cost nothing; a realistic driver-style watch set over a
large tree sustains high event throughput.
"""

from conftest import print_table

from repro.runtime import ControllerHost
from repro.sim import Simulator
from repro.vfs import EventMask


def test_delivery_throughput_single_watch(benchmark):
    host = ControllerHost(Simulator())
    sc = host.root_sc
    sc.mkdir("/net/switches/sw1")
    ino = sc.inotify_init()
    sc.inotify_add_watch(ino, "/net/switches/sw1/flows", EventMask.IN_CREATE)
    counter = iter(range(10**7))

    def create_and_drain():
        sc.mkdir(f"/net/switches/sw1/flows/f{next(counter)}")
        return ino.read()

    events = benchmark(create_and_drain)
    assert len(events) == 1


def test_cost_scales_with_interested_watchers_only(benchmark):
    rows = []
    for watchers in (1, 8, 64, 256):
        host = ControllerHost(Simulator())
        sc = host.root_sc
        sc.mkdir("/net/switches/sw1")
        instances = []
        for _ in range(watchers):
            ino = sc.inotify_init()
            sc.inotify_add_watch(ino, "/net/switches/sw1/flows", EventMask.IN_CREATE)
            instances.append(ino)
        before = host.vfs.counters.get("notify.events")
        for index in range(50):
            sc.mkdir(f"/net/switches/sw1/flows/f{index}")
        delivered = host.vfs.counters.get("notify.events") - before
        rows.append((watchers, 50, delivered))
        assert delivered == watchers * 50
    print_table("E7: deliveries for 50 creates vs watcher count", ["watchers", "creates", "deliveries"], rows)
    host = ControllerHost(Simulator())
    sc = host.root_sc
    sc.mkdir("/net/switches/sw1")
    counter = iter(range(10**7))
    benchmark(lambda: sc.mkdir(f"/net/switches/sw1/flows/g{next(counter)}"))


def test_unrelated_watches_cost_nothing(benchmark):
    """A watch on sw2 must not slow (or see) sw1 traffic."""
    host = ControllerHost(Simulator())
    sc = host.root_sc
    sc.mkdir("/net/switches/sw1")
    sc.mkdir("/net/switches/sw2")
    bystander = sc.inotify_init()
    sc.inotify_add_watch(bystander, "/net/switches/sw2/flows", EventMask.IN_CREATE)
    for index in range(100):
        sc.mkdir(f"/net/switches/sw1/flows/f{index}")
    assert bystander.read() == []
    counter = iter(range(10**7))
    benchmark(lambda: sc.mkdir(f"/net/switches/sw1/flows/h{next(counter)}"))


def test_driver_style_watchset_over_large_tree(benchmark):
    """A watch per flows/ dir across 100 switches: commits are still
    delivered selectively and promptly."""
    host = ControllerHost(Simulator())
    sc = host.root_sc
    client = host.client()
    ino = sc.inotify_init()
    wd_to_switch = {}
    for index in range(100):
        name = f"sw{index + 1}"
        client.create_switch(name)
        wd = sc.inotify_add_watch(ino, f"/net/switches/{name}/flows", EventMask.IN_CREATE)
        wd_to_switch[wd] = name
    from repro.dataplane import Match, Output

    client.create_flow("sw42", "target", Match(dl_vlan=42), [Output(1)], priority=5)
    events = ino.read()
    assert len(events) == 1
    assert wd_to_switch[events[0].wd] == "sw42"
    counter = iter(range(10**7))
    benchmark(lambda: client.create_flow("sw7", f"b{next(counter)}", Match(dl_vlan=7), [Output(1)], priority=5))
    print(f"\nwatch set: 100 dirs; one commit -> exactly 1 delivery")
