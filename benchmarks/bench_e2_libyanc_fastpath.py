"""E2 — §8.1: libyanc, the shared-memory fastpath.

Paper claims: libyanc provides "a fastpath for e.g. creating flow entries
atomically and without any context switchings" and "efficient, zero-copy
passing of bulk data — packet in buffers, for example — among
applications".

Reproduced shape:

* flow install via libyanc: 0 syscalls, 0 context switches (file path:
  dozens of each) and at least 5x cheaper under the calibrated cost model;
* zero-copy buffer handoff is O(1) in payload size; the copying path's
  billed bytes grow linearly.
"""

from conftest import print_table

from repro.dataplane import Match, Output
from repro.libyanc import LibYanc, ShmRing
from repro.perf import FUSE_COST_MODEL, SHM_COST_MODEL, PerfCounters, SyscallMeter
from repro.runtime import ControllerHost
from repro.sim import Simulator

N_FLOWS = 200


def _host() -> ControllerHost:
    host = ControllerHost(Simulator())
    host.client().create_switch("sw1")
    return host


def test_flow_install_file_path_vs_libyanc(benchmark):
    host = _host()
    meter = SyscallMeter()
    file_client = host.client(meter=meter)
    for index in range(N_FLOWS):
        file_client.create_flow("sw1", f"file{index}", Match(dl_vlan=index), [Output(1)], priority=9)
    file_syscalls, file_ctxsw = meter.syscalls, meter.context_switches

    ring_meter = SyscallMeter()
    ring_client = host.client(meter=ring_meter)
    entries = [(f"ring{index}", Match(dl_vlan=index), [Output(1)]) for index in range(N_FLOWS)]
    assert ring_client.create_flows_batched("sw1", entries, priority=9) == N_FLOWS
    ring_syscalls, ring_ctxsw = ring_meter.syscalls, ring_meter.context_switches

    lib = LibYanc(host.fs)
    for index in range(N_FLOWS):
        lib.create_flow("sw1", f"shm{index}", Match(dl_vlan=index), [Output(1)], priority=9)
    lib_ops = lib.counters.get("libyanc.op")

    file_time = FUSE_COST_MODEL.syscall_time(file_syscalls)
    ring_time = FUSE_COST_MODEL.syscall_time(ring_syscalls)
    shm_time = SHM_COST_MODEL.syscall_time(lib_ops)
    print_table(
        f"E2: installing {N_FLOWS} flows",
        ["path", "syscalls", "ctx switches", "simulated time"],
        [
            ("file I/O", file_syscalls, file_ctxsw, f"{file_time * 1e3:.3f} ms"),
            ("batched ring", ring_syscalls, ring_ctxsw, f"{ring_time * 1e3:.3f} ms"),
            ("libyanc", 0, 0, f"{shm_time * 1e3:.3f} ms"),
        ],
    )
    assert file_ctxsw >= 5 * max(1, lib_ops)
    assert file_syscalls / N_FLOWS > 10
    # the submission ring sits between the two: still kernel-mediated, but
    # at least 10x fewer crossings than per-syscall file I/O
    assert file_ctxsw >= 10 * max(1, ring_ctxsw)
    # wall-clock comparison of one install each
    counter = iter(range(10**6))
    benchmark(lambda: lib.create_flow("sw1", f"bench{next(counter)}", Match(dl_vlan=1), [Output(1)]))


def test_libyanc_atomicity_one_event_burst(benchmark):
    """The whole flow appears at once: a watcher needs exactly one
    IN_CREATE on the flows dir, never a half-written directory."""
    from repro.vfs import EventMask

    host = _host()
    lib = LibYanc(host.fs)
    sc = host.root_sc
    ino = sc.inotify_init()
    sc.inotify_add_watch(ino, "/net/switches/sw1/flows", EventMask.IN_CREATE)
    counter = iter(range(10**6))

    def create():
        lib.create_flow("sw1", f"atomic{next(counter)}", Match(dl_vlan=5, dl_type=0x800), [Output(2)], priority=3)

    benchmark(create)
    events = sc.inotify_read(ino)
    created = [e for e in events if e.mask & EventMask.IN_CREATE]
    # one creation event per flow, and each flow dir is complete on arrival
    name = created[0].name
    files = set(sc.listdir(f"/net/switches/sw1/flows/{name}"))
    assert {"match.dl_vlan", "match.dl_type", "action.out", "priority", "version"} <= files


def test_zero_copy_vs_copy_bulk_data(benchmark):
    sizes = (64, 1500, 9000, 65536)
    rows = []
    for size in sizes:
        payload = bytes(size)
        zero = PerfCounters()
        ring_zero = ShmRing(64, counters=zero)
        copy = PerfCounters()
        ring_copy = ShmRing(64, counters=copy)
        for _ in range(32):
            ring_zero.put(payload)
            ring_zero.get()
            ring_copy.put_copy(payload)
            ring_copy.get()
        zero_cost = FUSE_COST_MODEL.copy_time(zero.get("bytes.copied"))
        copy_cost = FUSE_COST_MODEL.copy_time(copy.get("bytes.copied"))
        rows.append((size, zero.get("bytes.copied"), copy.get("bytes.copied"), f"{zero_cost * 1e6:.2f} us", f"{copy_cost * 1e6:.2f} us"))
    print_table(
        "E2: passing 32 packet buffers between applications",
        ["payload B", "zero-copy bytes", "copied bytes", "zero-copy cost", "copy cost"],
        rows,
    )
    # zero-copy: no bytes billed at any size; copy path linear in size
    assert all(row[1] == 0 for row in rows)
    assert rows[-1][2] == 32 * 65536
    ring = ShmRing(64)
    big = bytes(65536)
    benchmark(lambda: (ring.put(big), ring.get()))
