"""E1 — §8.1: the file interface's syscall / context-switch cost.

Paper claim: "Each fine-grained access to the file system is done through
a system call ... Complex operations such as writing flow entries to
thousands of nodes will result in tens of thousands of context switches."

Reproduced shape:

* syscalls per flow install is a constant greater than 10;
* context switches grow linearly in fleet size;
* at 1000 switches, one fleet-wide flow push costs > 10,000 context
  switches — the paper's "tens of thousands".
"""

from conftest import print_table

from repro.dataplane import Match, Output
from repro.perf import FUSE_COST_MODEL, SyscallMeter
from repro.runtime import ControllerHost
from repro.sim import Simulator
from repro.yancfs import YancClient

FLEET_SIZES = (10, 100, 500, 1000, 2000)


def _host_with_switches(count: int) -> ControllerHost:
    host = ControllerHost(Simulator())
    client = host.client()
    for index in range(count):
        client.create_switch(f"sw{index + 1}")
    return host


def _install_everywhere(client: YancClient, switches: list[str], tag: str) -> None:
    for switch in switches:
        client.create_flow(switch, f"f_{tag}", Match(dl_type=0x0800, nw_proto=6, tp_dst=22), [Output(1)], priority=40)


def test_syscalls_per_flow_install_constant(benchmark):
    host = _host_with_switches(1)
    meter = SyscallMeter()
    client = host.client(meter=meter)
    counter = iter(range(10**6))

    def install():
        client.create_flow("sw1", f"flow{next(counter)}", Match(dl_type=0x0800, tp_dst=22, nw_proto=6), [Output(1)], priority=40)

    benchmark(install)
    per_flow = meter.syscalls / max(1, meter.counters.get("syscall.mkdir"))
    print(f"\nsyscalls per flow install: {per_flow:.1f}")
    assert per_flow > 10  # mkdir + per-file open/write/close + commit


def test_context_switches_scale_with_fleet(benchmark):
    rows = []
    for size in FLEET_SIZES:
        host = _host_with_switches(size)
        meter = SyscallMeter()
        client = host.client(meter=meter)
        _install_everywhere(client, client.switches(), "sweep")
        simulated = FUSE_COST_MODEL.syscall_time(meter.syscalls)
        ns = client.sc.ns
        ns.dcache.publish(host.vfs.counters)
        dcache_hits = host.vfs.counters.get("dcache.hits") + host.vfs.counters.get("dcache.path_hits")
        rows.append((size, meter.syscalls, meter.context_switches, dcache_hits, f"{simulated * 1000:.2f} ms"))
    print_table(
        "E1: fleet-wide flow push, file path (per-switch flow entry)",
        ["switches", "syscalls", "ctx switches", "dcache hits", "simulated time"],
        rows,
    )
    by_size = {row[0]: row for row in rows}
    # the paper's headline: thousands of nodes => tens of thousands of switches
    assert by_size[1000][2] > 10_000
    # linearity: 10x the fleet ~ 10x the context switches (within 20%)
    ratio = by_size[1000][2] / by_size[100][2]
    assert 8 <= ratio <= 12
    # and a timed reference point for the 10-switch case
    host = _host_with_switches(10)
    client = host.client()
    counter = iter(range(10**6))
    benchmark(lambda: _install_everywhere(client, [f"sw{i+1}" for i in range(10)], f"b{next(counter)}"))


def test_read_side_also_pays_per_access(benchmark):
    """stat()/read() sweeps over the tree cost linearly too."""
    host = _host_with_switches(100)
    client = host.client()
    _install_everywhere(client, client.switches(), "r")
    meter = SyscallMeter()
    reader = host.client(meter=meter)

    def scan():
        total = 0
        for switch in reader.switches():
            for flow in reader.flows(switch):
                total += reader.read_flow(switch, flow).priority
        return total

    benchmark(scan)
    print(f"\nfull-tree flow scan of 100 switches: {meter.syscalls} syscalls, {meter.context_switches} ctxsw")
    assert meter.syscalls > 100 * 5
