"""E6 — §4.1: mixed-protocol fleets and live driver upgrade.

Paper design: "the majority of switches will communicate with an OpenFlow
1.0 driver, a handful with a separate OpenFlow 1.3 driver"; "Nodes in such
a system can therefore be gradually upgraded, live, to newer protocols."

Reproduced shape: a fleet split across both drivers behaves identically
through the tree; per-switch live migration is cheap (a handful of control
messages) and loses no flow state; both codecs sustain high encode/decode
throughput (1.3's TLV match costs more bytes than 1.0's fixed match).
"""

from conftest import print_table

import repro.openflow.of10 as of10
import repro.openflow.of13 as of13
from repro.dataplane import Match, Output, build_linear
from repro.drivers import OF10_VERSION, OF13_VERSION
from repro.netpkt import cidr
from repro.openflow import messages as m
from repro.runtime import YancController

FLOW_MOD = m.FlowMod(
    match=Match(dl_type=0x0800, nw_dst=cidr("10.0.0.0/24"), nw_proto=6, tp_dst=443),
    actions=[Output(3)],
    priority=100,
    idle_timeout=30,
)


def test_codec_throughput_of10(benchmark):
    raw = of10.encode(FLOW_MOD)
    benchmark(lambda: of10.decode(of10.encode(FLOW_MOD))[0])
    print(f"\nOF1.0 flow-mod wire size: {len(raw)} bytes")
    assert len(raw) == 80  # 8 header + 40 match + 24 body + 8 action


def test_codec_throughput_of13(benchmark):
    raw = of13.encode(FLOW_MOD)
    benchmark(lambda: of13.decode(of13.encode(FLOW_MOD))[0])
    print(f"\nOF1.3 flow-mod wire size: {len(raw)} bytes")
    assert len(raw) > 88  # TLV match + instruction framing cost more


def test_mixed_fleet_identical_behaviour(benchmark):
    ctl = YancController(build_linear(4))
    of10_driver = ctl.add_driver()
    of13_driver = ctl.add_driver(version=OF13_VERSION)
    switches = list(ctl.net.switches.values())
    for switch in switches[:2]:
        of10_driver.attach_switch(switch)
    for switch in switches[2:]:
        of13_driver.attach_switch(switch)
    for switch in switches:
        switch.start_expiry()
    ctl.run(0.1)
    yc = ctl.client()
    for switch in yc.switches():
        yc.create_flow(switch, "same", Match(dl_type=0x0800), [Output(1)], priority=8)
    ctl.run(0.3)
    rows = []
    for driver in (of10_driver, of13_driver):
        for binding in driver.bindings.values():
            entry = binding.switch.table.entries()[0]
            rows.append((binding.fs_name, hex(binding.version), entry.priority, str(entry.match)))
    print_table("E6: one tree, two wire protocols", ["switch", "version", "priority", "match"], rows)
    assert {row[1] for row in rows} == {hex(OF10_VERSION), hex(OF13_VERSION)}
    assert len({(row[2], row[3]) for row in rows}) == 1  # identical hardware state
    counter = iter(range(10**6))
    benchmark(lambda: yc.create_flow("sw4", f"b{next(counter)}", Match(dl_vlan=2), [Output(1)], priority=8))


def test_live_upgrade_cost_and_state_preservation(benchmark):
    rows = []
    ctl = YancController(build_linear(2)).start()
    yc = ctl.client()
    for index in range(20):
        yc.create_flow("sw1", f"pre{index}", Match(dl_vlan=index), [Output(1)], priority=8)
    ctl.run(0.3)
    sw1 = ctl.net.switches["sw1"]
    assert len(sw1.table) == 20
    of13_driver = ctl.add_driver(version=OF13_VERSION)
    tx_before = ctl.host.vfs.counters.get("openflow.tx")
    start = ctl.sim.now
    ctl.drivers[0].detach_switch(sw1.dpid)
    of13_driver.attach_switch(sw1)
    ctl.run(0.3)
    elapsed = ctl.sim.now - start
    messages = ctl.host.vfs.counters.get("openflow.tx") - tx_before
    rows.append(("sw1", f"{elapsed * 1e3:.1f} ms", messages, len(sw1.table)))
    print_table(
        "E6: live OF1.0 -> OF1.3 migration of a switch with 20 flows",
        ["switch", "window", "control msgs", "flows after"],
        rows,
    )
    assert of13_driver.bindings[sw1.dpid].version == OF13_VERSION
    assert len(sw1.table) == 20  # nothing lost
    # migration control traffic is modest: ~hello+features+20 re-asserts
    assert messages < 60
    benchmark(lambda: of13.encode(FLOW_MOD))
