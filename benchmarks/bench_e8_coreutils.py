"""E8 — §5.4: the standard-utilities one-liners, verbatim.

Paper claims:

* "A quick overview of the switches in a network can be provided by
  ``ls -l /net/switches``";
* "To list flow entries which affect ssh traffic:
  ``find /net -name tp.dst -exec grep 22``" (our match files are named
  ``match.tp_dst``);
* port config via ``echo 1 > .../config.port_down``.

Reproduced shape: each one-liner works on a live controller and returns
the administratively-correct answer; find-over-the-tree scales with tree
size (it is a real traversal, not an index).
"""

from conftest import print_table

from repro.dataplane import Match, Output, build_linear
from repro.runtime import YancController
from repro.shell import Shell


def _populated(n_switches=3, ssh_flows=2):
    ctl = YancController(build_linear(n_switches)).start()
    yc = ctl.client()
    switches = yc.switches()
    for index in range(ssh_flows):
        yc.create_flow(switches[index], f"ssh{index}", Match(dl_type=0x800, nw_proto=6, tp_dst=22), [Output(1)], priority=30)
    yc.create_flow(switches[0], "web", Match(dl_type=0x800, nw_proto=6, tp_dst=80), [Output(1)], priority=30)
    ctl.run(0.2)
    return ctl, Shell(ctl.host.root_sc)


def test_ls_l_net_switches(benchmark):
    ctl, shell = _populated()
    out = benchmark(shell.run, "ls -l /net/switches")
    print("\n$ ls -l /net/switches")
    print(out)
    lines = out.splitlines()
    assert len(lines) == 3
    assert all(line.startswith("drwxr-xr-x") for line in lines)


def test_find_ssh_flows_oneliner(benchmark):
    ctl, shell = _populated()
    out = benchmark(shell.run, "find /net -name match.tp_dst -exec grep 22 {} ;")
    print("\n$ find /net -name match.tp_dst -exec grep 22 {} ;")
    print(out)
    hits = out.splitlines()
    assert len(hits) == 2  # the two ssh flows, not the web flow
    assert all(line.endswith(":22") for line in hits)


def test_echo_port_down_is_real_configuration(benchmark):
    ctl, shell = _populated()
    shell.run("echo 1 > /net/switches/sw1/ports/port_2/config.port_down")
    ctl.run(0.2)
    assert not ctl.net.switches["sw1"].ports[2].admin_up
    shell.run("echo 0 > /net/switches/sw1/ports/port_2/config.port_down")
    ctl.run(0.2)
    assert ctl.net.switches["sw1"].ports[2].admin_up
    benchmark(shell.run, "cat /net/switches/sw1/ports/port_2/config.port_down")


def test_grep_r_counts_flow_files(benchmark):
    ctl, shell = _populated()
    out = benchmark(shell.run, "grep -r -l 22 /net/switches/sw1/flows")
    assert "/net/switches/sw1/flows/ssh0/match.tp_dst" in out.splitlines()


def test_find_scales_with_tree_size(benchmark):
    rows = []
    for n in (2, 4, 8):
        ctl, shell = _populated(n_switches=n, ssh_flows=2)
        meter = ctl.host.root_sc.meter
        before = meter.syscalls
        shell.run("find /net -name match.tp_dst")
        rows.append((n, meter.syscalls - before))
    print_table("E8: find /net traversal cost vs fleet size", ["switches", "syscalls"], rows)
    assert rows[-1][1] > rows[0][1]
    ctl, shell = _populated(n_switches=4)
    benchmark(shell.run, "find /net -name match.tp_dst")


def test_wc_and_cat_compose(benchmark):
    ctl, shell = _populated()
    shell.run("cat /net/switches/sw1/flows/ssh0/priority > /tmp_priority")
    assert shell.run("cat /tmp_priority") == "30"
    benchmark(shell.run, "wc -l /net/switches/sw1/id")
