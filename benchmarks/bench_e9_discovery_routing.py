"""E9 — §4.3/§8: topology discovery and reactive routing performance.

The prototype's system apps: "A topology daemon ... maintains port-to-port
symbolic links.  A router daemon handles all table misses and sets up
paths based on exact match through the network."

Reproduced shape: discovery converges within a small number of beacon
rounds regardless of fleet size (beacons are parallel); reactive path
setup costs one punt round trip plus per-hop flow installs; subsequent
packets are forwarded in hardware with no controller involvement.
"""

from conftest import print_table

from repro.apps import RouterDaemon, TopologyDaemon, read_topology
from repro.dataplane import build_fat_tree, build_linear, build_ring, build_tree
from repro.runtime import YancController

TOPOLOGIES = [
    ("linear-4", lambda: build_linear(4)),
    ("ring-6", lambda: build_ring(6)),
    ("tree-3x2", lambda: build_tree(3, 2)),
    ("fat-tree-4", lambda: build_fat_tree(4)),
]


def test_discovery_convergence_time(benchmark):
    rows = []
    for name, builder in TOPOLOGIES:
        ctl = YancController(builder()).start()
        TopologyDaemon(ctl.host.process(), ctl.sim, beacon_interval=0.25).start()
        truth = ctl.expected_topology()
        start = ctl.sim.now
        converged_at = None
        deadline = start + 20.0
        while ctl.sim.now < deadline:
            ctl.run(0.05)
            if read_topology(ctl.client()) == truth:
                converged_at = ctl.sim.now - start
                break
        assert converged_at is not None, f"{name} never converged"
        rows.append((name, len(ctl.net.switches), len(truth), f"{converged_at:.2f} s"))
    print_table("E9: LLDP discovery convergence", ["topology", "switches", "links", "converged in"], rows)
    # convergence is beacon-round bound, not fleet-size bound: the fat
    # tree (20 switches) converges within ~2 beacon intervals like the rest
    times = [float(row[3].split()[0]) for row in rows]
    assert max(times) <= 1.0
    ctl = YancController(build_linear(3)).start()
    topod = TopologyDaemon(ctl.host.process(), ctl.sim, beacon_interval=0.25).start()
    benchmark(topod.send_beacons)


def test_reactive_path_setup_latency_and_hardware_fastpath(benchmark):
    ctl = YancController(build_linear(4)).start()
    TopologyDaemon(ctl.host.process(), ctl.sim).start()
    router = RouterDaemon(ctl.host.process(), ctl.sim).start()
    ctl.run(2.0)
    h1, h4 = ctl.net.hosts["h1"], ctl.net.hosts["h4"]

    # first ping: reactive (ARP flood + punt + path install)
    start = ctl.sim.now
    seq = h1.ping(h4.ip)
    while not h1.reachable(seq) and ctl.sim.now < start + 5.0:
        ctl.run(0.01)
    first_rtt = h1.ping_results[-1].rtt
    assert h1.reachable(seq)

    # second ping: pure hardware path — the router does no new work
    # (driver punt counts include periodic LLDP beacons, so measure the
    # router's own reactions instead)
    work_before = router.paths_installed + router.floods
    seq2 = h1.ping(h4.ip)
    ctl.run(1.0)
    second_rtt = h1.ping_results[-1].rtt
    assert h1.reachable(seq2)
    router_work = (router.paths_installed + router.floods) - work_before
    print_table(
        "E9: reactive routing h1 -> h4 (3 switch hops)",
        ["ping", "rtt", "router reactions"],
        [("first (reactive)", f"{first_rtt * 1e3:.2f} ms", work_before), ("second (hardware)", f"{second_rtt * 1e3:.2f} ms", router_work)],
    )
    assert second_rtt < first_rtt / 2  # hardware path dwarfs the reactive one
    assert router_work == 0
    counter = iter(range(10**6))

    def reroute():
        router.host_locations.clear()
        next(counter)
        return router.topology()

    benchmark(reroute)


def test_path_setup_cost_grows_with_hop_count(benchmark):
    rows = []
    for hops in (2, 4, 6):
        ctl = YancController(build_linear(hops)).start()
        TopologyDaemon(ctl.host.process(), ctl.sim).start()
        router = RouterDaemon(ctl.host.process(), ctl.sim).start()
        ctl.run(2.0)
        src = ctl.net.hosts["h1"]
        dst = ctl.net.hosts[f"h{hops}"]
        seq = src.ping(dst.ip)
        ctl.run(5.0)
        assert src.reachable(seq)
        route_flows = sum(
            1 for sw in ctl.client().switches() for f in ctl.client().flows(sw) if f.startswith("rt-")
        )
        rows.append((hops, route_flows, router.paths_installed))
    print_table("E9: exact-match entries installed vs path length", ["switches", "rt- flows", "paths"], rows)
    assert rows[0][1] < rows[1][1] < rows[2][1]
    ctl = YancController(build_linear(2)).start()
    TopologyDaemon(ctl.host.process(), ctl.sim).start()
    RouterDaemon(ctl.host.process(), ctl.sim).start()
    benchmark(lambda: ctl.run(0.05))
