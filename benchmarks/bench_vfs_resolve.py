"""VFS resolve benchmark: deep-path open+stat with the dentry cache on/off.

Standalone runner (not part of the pytest-benchmark suite):

    PYTHONPATH=src python benchmarks/bench_vfs_resolve.py [--quick] [--out F]

Emits ``BENCH_vfs_resolve.json`` with ops/sec for a deep-path
open+close+stat loop under both cache settings, the resulting speedup,
and the dentry-cache counter totals.  Before timing anything it replays a
mixed workload (creates, renames, negative lookups, watches) on two fresh
hosts — cache on and cache off — and asserts byte-identical observable
behavior: same inode/dev numbers, same exception types, same notify
events.  The cache must be a pure accelerator.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.vfs import (
    FileNotFound,
    IN_ALL_EVENTS,
    MemFs,
    O_RDONLY,
    Syscalls,
    VirtualFileSystem,
)

DEPTH = 16
QUICK_OPS = 2_000
FULL_OPS = 20_000
REPS = 5


def _make_deep_path(sc: Syscalls, depth: int) -> str:
    path = ""
    for i in range(depth):
        path += f"/d{i}"
        sc.mkdir(path)
    leaf = path + "/leaf"
    sc.write_text(leaf, "payload")
    return leaf


def _mixed_workload_trace(cache_enabled: bool) -> list:
    """Run a resolution-heavy workload and record everything observable."""
    vfs = VirtualFileSystem()
    sc = Syscalls(vfs)
    sc.ns.dcache.enabled = cache_enabled
    trace: list = []
    # Device numbers come from a process-global counter, so two hosts in
    # one process see different raw values; map them to first-seen indices.
    dev_ids: dict[int, int] = {}

    def dev(raw: int) -> int:
        return dev_ids.setdefault(raw, len(dev_ids))
    ino = sc.inotify_init()
    sc.makedirs("/net/switches/s1/flows")
    sc.inotify_add_watch(ino, "/net/switches/s1/flows", IN_ALL_EVENTS)
    for round_no in range(3):
        sc.write_text(f"/net/switches/s1/flows/f{round_no}", f"v{round_no}")
        trace.append(sc.read_text(f"/net/switches/s1/flows/f{round_no}"))
        st = sc.stat(f"/net/switches/s1/flows/f{round_no}")
        trace.append((st.ino, dev(st.dev), st.size))
        try:
            sc.stat("/net/switches/s1/flows/missing")
        except FileNotFound:
            trace.append("ENOENT")
        sc.rename(f"/net/switches/s1/flows/f{round_no}", f"/net/switches/s1/flows/g{round_no}")
        trace.append(sorted(sc.listdir("/net/switches/s1/flows")))
    sc.mkdir("/m")
    sc.mount("/m", MemFs())
    sc.write_text("/m/x", "mounted")
    trace.append(dev(sc.stat("/m/x").dev))
    sc.umount("/m")
    try:
        sc.read_text("/m/x")
    except FileNotFound:
        trace.append("ENOENT-after-umount")
    trace.extend(
        (e.wd, int(e.mask), e.name, e.cookie != 0) for e in sc.inotify_read(ino)
    )
    return trace


def _ops_per_sec(sc: Syscalls, leaf: str, ops: int, reps: int) -> float:
    best = 0.0
    for _ in range(reps):
        t0 = time.perf_counter()
        for _ in range(ops):
            fd = sc.open(leaf, O_RDONLY)
            sc.close(fd)
            sc.stat(leaf)
        elapsed = time.perf_counter() - t0
        best = max(best, ops / elapsed)
    return best


def run(quick: bool) -> dict:
    on_trace = _mixed_workload_trace(cache_enabled=True)
    off_trace = _mixed_workload_trace(cache_enabled=False)
    assert on_trace == off_trace, "dentry cache changed observable behavior"

    ops = QUICK_OPS if quick else FULL_OPS
    vfs = VirtualFileSystem()
    sc = Syscalls(vfs)
    leaf = _make_deep_path(sc, DEPTH)

    sc.ns.dcache.enabled = True
    sc.ns.dcache.flush()
    ops_on = _ops_per_sec(sc, leaf, ops, REPS)
    stats_on = sc.ns.dcache.stats()
    sc.ns.dcache.publish(vfs.counters)

    sc.ns.dcache.enabled = False
    sc.ns.dcache.flush()
    ops_off = _ops_per_sec(sc, leaf, ops, REPS)

    return {
        "benchmark": "vfs_resolve",
        "workload": f"open+close+stat on a {DEPTH}-component path, best of {REPS} reps",
        "ops_per_iteration": ops,
        "quick": quick,
        "behavior_parity": "identical trace, cache on vs off",
        "ops_sec_cache_on": round(ops_on, 1),
        "ops_sec_cache_off": round(ops_off, 1),
        "speedup": round(ops_on / ops_off, 2),
        "dcache": stats_on,
        "perf_counters": {
            name: vfs.counters.get(name)
            for name in vfs.counters.names()
            if name.startswith("dcache.")
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller op count (CI smoke)")
    parser.add_argument("--out", default="BENCH_vfs_resolve.json", help="output JSON path")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail (exit 1) if cache-on/cache-off falls below this ratio",
    )
    args = parser.parse_args(argv)
    result = run(quick=args.quick)
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))
    if args.min_speedup and result["speedup"] < args.min_speedup:
        print(f"speedup {result['speedup']} < required {args.min_speedup}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
