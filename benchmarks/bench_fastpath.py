"""Fastpath benchmark: batched ring submission vs per-syscall file I/O.

Standalone runner (not part of the pytest-benchmark suite):

    PYTHONPATH=src python benchmarks/bench_fastpath.py [--quick] [--out F]

Two workload shapes from the experiment index, both at high fan-out:

* **flow install (E2 shape)** — N flows land in one switch table.  The
  file path pays mkdir + three syscalls per spec file + the commit
  read/write per flow; :meth:`YancClient.create_flows_batched` preps the
  same operations as linked chains and crosses the kernel once per
  submission-queue fill.
* **packet-in fan-out (E4 shape)** — one packet-in publishes to N app
  buffers.  The file path pays 17 syscalls per app per event;
  :meth:`YancClient.write_packet_in_batched` fans the whole event out in
  one ``io_uring_enter``.

Both sides of each comparison must produce identical trees (asserted:
committed flow specs and drained event payloads match field for field);
the figure of merit is metered context switches under the FUSE cost
model.  Emits ``BENCH_fastpath.json``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.dataplane import Match, Output
from repro.perf import SyscallMeter
from repro.runtime import ControllerHost
from repro.sim import Simulator

QUICK = {"flows": 40, "apps": 8, "events": 3}
FULL = {"flows": 200, "apps": 32, "events": 5}


def _host() -> ControllerHost:
    host = ControllerHost(Simulator())
    host.client().create_switch("sw1")
    return host


def flow_install(n_flows: int) -> dict:
    """Install the same N-flow table twice: per-syscall vs one submission."""
    host = _host()

    unbatched = SyscallMeter()
    file_client = host.client(meter=unbatched)
    for index in range(n_flows):
        file_client.create_flow("sw1", f"u{index}", Match(dl_vlan=index), [Output(1)], priority=9)

    batched = SyscallMeter()
    ring_client = host.client(meter=batched)
    entries = [(f"b{index}", Match(dl_vlan=index), [Output(1)]) for index in range(n_flows)]
    created = ring_client.create_flows_batched("sw1", entries, priority=9)
    assert created == n_flows

    # Behavior parity: either path commits the identical flow spec.
    check = host.client()
    for index in (0, n_flows - 1):
        assert check.read_flow("sw1", f"u{index}") == check.read_flow("sw1", f"b{index}")

    return {
        "flows": n_flows,
        "unbatched": {"syscalls": unbatched.syscalls, "ctxsw": unbatched.context_switches},
        "batched": {"syscalls": batched.syscalls, "ctxsw": batched.context_switches},
        "ctxsw_ratio": round(unbatched.context_switches / max(batched.context_switches, 1), 2),
    }


def packet_fanout(n_apps: int, n_events: int) -> dict:
    """Fan each of R packet-ins out to N app buffers, both ways."""
    host = _host()
    setup = host.client()
    file_apps = [f"u_app{index}" for index in range(n_apps)]
    ring_apps = [f"b_app{index}" for index in range(n_apps)]
    for app in file_apps + ring_apps:
        setup.subscribe_events("sw1", app)

    unbatched = SyscallMeter()
    file_client = host.client(meter=unbatched)
    for seq in range(n_events):
        for app in file_apps:
            file_client.write_packet_in(
                "sw1", app, seq, in_port=1, reason="no_match", buffer_id=0, total_len=4, data=b"miss"
            )

    batched = SyscallMeter()
    ring_client = host.client(meter=batched)
    ring = ring_client.sc.io_uring_setup(entries=max(256, 17 * n_apps))
    for seq in range(n_events):
        published = ring_client.write_packet_in_batched(
            "sw1", ring_apps, seq, in_port=1, reason="no_match", buffer_id=0, total_len=4, data=b"miss", uring=ring
        )
        assert published == n_apps

    # Behavior parity: every buffer drains the same events either way.
    check = host.client()
    for file_app, ring_app in zip(file_apps, ring_apps):
        file_events = check.read_events("sw1", file_app)
        ring_events = check.read_events("sw1", ring_app)
        assert len(file_events) == len(ring_events) == n_events
        key = lambda e: (e.seq, e.in_port, e.reason, e.buffer_id, e.total_len, e.data)  # noqa: E731
        assert [key(e) for e in file_events] == [key(e) for e in ring_events]

    return {
        "apps": n_apps,
        "events": n_events,
        "unbatched": {"syscalls": unbatched.syscalls, "ctxsw": unbatched.context_switches},
        "batched": {"syscalls": batched.syscalls, "ctxsw": batched.context_switches},
        "ctxsw_ratio": round(unbatched.context_switches / max(batched.context_switches, 1), 2),
    }


def run(quick: bool) -> dict:
    cfg = QUICK if quick else FULL
    install = flow_install(cfg["flows"])
    fanout = packet_fanout(cfg["apps"], cfg["events"])
    for shape in (install, fanout):
        assert shape["ctxsw_ratio"] >= 10, shape
    return {
        "benchmark": "fastpath",
        "workload": (
            f"{cfg['flows']}-flow table install + {cfg['events']} packet-ins "
            f"fanned out to {cfg['apps']} app buffers, batched vs per-syscall"
        ),
        "quick": quick,
        "behavior_parity": "identical flow specs and event payloads, ring vs file path",
        "flow_install": install,
        "packet_fanout": fanout,
        "min_ctxsw_ratio": min(install["ctxsw_ratio"], fanout["ctxsw_ratio"]),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller workload (CI smoke)")
    parser.add_argument("--out", default="BENCH_fastpath.json", help="output JSON path")
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.0,
        help="fail (exit 1) if the worst unbatched/batched ctxsw ratio falls below this",
    )
    args = parser.parse_args(argv)
    result = run(quick=args.quick)
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))
    if args.min_ratio and result["min_ctxsw_ratio"] < args.min_ratio:
        print(
            f"ratio {result['min_ctxsw_ratio']} < required {args.min_ratio}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
