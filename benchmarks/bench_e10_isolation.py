"""E10 — §5.1/§5.3: permissions, ACLs, and namespace isolation.

Paper claims: "the network operating system can implement fine-grained
control of network resources using permissions. For example, while
individual flows can be protected for specific processes, so too can an
entire switch"; namespaces "isolate subsets of the network to individual
processes".

Reproduced shape: permission checks add only a small constant to each
access; protection works at flow and whole-switch granularity; a tenant
in a view namespace can neither read nor write outside its slice.
"""

import pytest
from conftest import print_table

from repro.dataplane import Match, Output, build_linear
from repro.runtime import YancController
from repro.vfs import Acl, AclEntry, AclTag, Credentials, FileNotFound, PermissionDenied, Syscalls
from repro.views import Slicer, grant_view, tenant_process
from repro.yancfs import YancClient

ALICE = Credentials(uid=3001, gid=3001)
BOB = Credentials(uid=3002, gid=3002)


def test_permission_check_overhead_small(benchmark):
    ctl = YancController(build_linear(2)).start()
    yc = ctl.client()
    yc.create_flow("sw1", "f", Match(dl_type=0x800), [Output(1)], priority=5)
    root_reader = ctl.host.process()
    user_reader = Syscalls(ctl.host.vfs, cred=ALICE)
    # both can read a world-readable file; timing difference is the check
    path = "/net/switches/sw1/flows/f/priority"
    benchmark(user_reader.read_text, path)
    assert root_reader.read_text(path) == user_reader.read_text(path) == "5"


def test_flow_level_protection(benchmark):
    ctl = YancController(build_linear(2)).start()
    yc = ctl.client()
    yc.create_flow("sw1", "alice_flow", Match(dl_vlan=1), [Output(1)], priority=5, commit=False)
    sc = ctl.host.root_sc
    sc.chown("/net/switches/sw1/flows/alice_flow", ALICE.uid, ALICE.gid)
    sc.chmod("/net/switches/sw1/flows/alice_flow", 0o700)
    for name in sc.listdir("/net/switches/sw1/flows/alice_flow"):
        sc.chown(f"/net/switches/sw1/flows/alice_flow/{name}", ALICE.uid, ALICE.gid)
        sc.chmod(f"/net/switches/sw1/flows/alice_flow/{name}", 0o600)
    alice = Syscalls(ctl.host.vfs, cred=ALICE)
    bob = Syscalls(ctl.host.vfs, cred=BOB)
    alice.write_text("/net/switches/sw1/flows/alice_flow/priority", "7")
    with pytest.raises(PermissionDenied):
        bob.read_text("/net/switches/sw1/flows/alice_flow/priority")
    with pytest.raises(PermissionDenied):
        bob.write_text("/net/switches/sw1/flows/alice_flow/priority", "1")
    benchmark(alice.read_text, "/net/switches/sw1/flows/alice_flow/priority")


def test_whole_switch_protection(benchmark):
    """'so too can an entire switch (thus all of its flows)'."""
    ctl = YancController(build_linear(2)).start()
    sc = ctl.host.root_sc
    sc.chmod("/net/switches/sw1", 0o700)  # root-only traversal
    bob = Syscalls(ctl.host.vfs, cred=BOB)
    with pytest.raises(PermissionDenied):
        bob.listdir("/net/switches/sw1")
    with pytest.raises(PermissionDenied):
        bob.read_text("/net/switches/sw1/flows/anything/priority")
    # sw2 remains open
    assert bob.listdir("/net/switches/sw2/flows") == []
    benchmark(lambda: bob.listdir("/net/switches/sw2/flows"))


def test_acl_grants_named_user_without_opening_world(benchmark):
    ctl = YancController(build_linear(2)).start()
    sc = ctl.host.root_sc
    sc.chmod("/net/switches/sw1", 0o700)
    acl = Acl(
        entries=(
            AclEntry(AclTag.USER_OBJ, 7),
            AclEntry(AclTag.USER, 5, qualifier=ALICE.uid),
            AclEntry(AclTag.GROUP_OBJ, 0),
            AclEntry(AclTag.OTHER, 0),
        )
    )
    sc.set_acl("/net/switches/sw1", acl)
    alice = Syscalls(ctl.host.vfs, cred=ALICE)
    bob = Syscalls(ctl.host.vfs, cred=BOB)
    assert "flows" in alice.listdir("/net/switches/sw1")
    with pytest.raises(PermissionDenied):
        bob.listdir("/net/switches/sw1")
    benchmark(lambda: alice.listdir("/net/switches/sw1"))


def test_namespace_tenant_cannot_reach_other_slice(benchmark):
    ctl = YancController(build_linear(3)).start()
    for view, switches, vlan, cred in (("a", ["sw1"], 100, ALICE), ("b", ["sw3"], 200, BOB)):
        Slicer(ctl.host.process(), ctl.sim, view=view, switches=switches, headerspace=Match(dl_vlan=vlan)).start()
    ctl.run(0.2)
    grant_view(ctl.host.root_sc, "/net/views/a", ALICE.uid, ALICE.gid)
    grant_view(ctl.host.root_sc, "/net/views/b", BOB.uid, BOB.gid)
    alice = tenant_process(ctl.host.vfs, "/net/views/a", ALICE)
    bob = tenant_process(ctl.host.vfs, "/net/views/b", BOB)
    YancClient(alice).create_flow("sw1", "mine", Match(dl_vlan=100), [Output(1)], priority=5)
    ctl.run(0.3)
    # Bob's world simply does not contain Alice's switch or view
    assert bob.listdir("/net/switches") == ["sw3"]
    with pytest.raises(FileNotFound):
        bob.read_text("/net/switches/sw1/flows/mine/priority")
    with pytest.raises(FileNotFound):
        bob.listdir("/net/views/a")
    rows = [
        ("alice sees", str(alice.listdir("/net/switches"))),
        ("bob sees", str(bob.listdir("/net/switches"))),
        ("master sees", str(ctl.client().switches())),
    ]
    print_table("E10: per-tenant namespace views", ["who", "/net/switches"], rows)
    benchmark(lambda: bob.listdir("/net/switches"))
