"""Ablations — the design choices DESIGN.md calls out, measured.

A1. inotify wakeups vs periodic polling for commit detection (§5.2's
    "comes free" vs what the alternative would cost).
A2. version-commit granularity: batch N attribute edits under one commit
    vs committing after every edit (§3.4's atomic-update rationale).
A3. switch packet buffering: miss_send_len punts + buffer release vs
    shipping full frames both ways.
A4. device-poll interval (§7.1): control responsiveness vs RPC load.
"""

from conftest import print_table

from repro.dataplane import Match, Output, build_linear
from repro.perf import SyscallMeter
from repro.runtime import ControllerHost, YancController
from repro.sim import Simulator
from repro.vfs import EventMask

N_COMMITS = 20


def test_a1_notify_vs_polling(benchmark):
    """Detecting N commits: event-driven reads only what changed; a
    poller pays a full scan per period whether anything changed or not."""
    # -- event-driven watcher
    host = ControllerHost(Simulator())
    client = host.client()
    client.create_switch("sw1")
    watcher_meter = SyscallMeter()
    watcher = host.root_sc.spawn(meter=watcher_meter)
    ino = watcher.inotify_init()
    watcher.inotify_add_watch(ino, "/net/switches/sw1/flows", EventMask.IN_CREATE)
    for index in range(N_COMMITS):
        client.create_flow("sw1", f"f{index}", Match(dl_vlan=index), [Output(1)], priority=5)
    detected = len([e for e in watcher.inotify_read(ino) if e.mask & EventMask.IN_CREATE])
    notify_cost = watcher_meter.syscalls
    assert detected == N_COMMITS

    # -- polling scanner: 50 scan rounds to observe the same 20 commits
    host2 = ControllerHost(Simulator())
    client2 = host2.client()
    client2.create_switch("sw1")
    poller_meter = SyscallMeter()
    poller = host2.root_sc.spawn(meter=poller_meter)
    seen: set[str] = set()
    poll_rounds = 50
    per_round = max(1, N_COMMITS // poll_rounds)
    created = 0
    for _round in range(poll_rounds):
        for _ in range(per_round):
            if created < N_COMMITS:
                client2.create_flow("sw1", f"f{created}", Match(dl_vlan=created), [Output(1)], priority=5)
                created += 1
        for name in poller.listdir("/net/switches/sw1/flows"):
            if name not in seen:
                seen.add(name)
                poller.read_text(f"/net/switches/sw1/flows/{name}/version")
    polling_cost = poller_meter.syscalls
    assert len(seen) == N_COMMITS
    print_table(
        f"A1: observer syscalls to detect {N_COMMITS} commits",
        ["strategy", "syscalls", "per commit"],
        [
            ("inotify", notify_cost, f"{notify_cost / N_COMMITS:.1f}"),
            (f"poll x{poll_rounds}", polling_cost, f"{polling_cost / N_COMMITS:.1f}"),
        ],
    )
    assert notify_cost < polling_cost / 3
    benchmark(lambda: watcher.inotify_read(ino))


def test_a2_commit_batching(benchmark):
    """One version bump for a 5-field flow vs a bump after every field:
    the driver sends one flow-mod instead of five (and never installs a
    half-written entry)."""
    rows = []
    for batched in (True, False):
        ctl = YancController(build_linear(1)).start()
        yc = ctl.client()
        sent_before = ctl.drivers[0].flow_mods_sent
        path = yc.flow_path("sw1", "f")
        ctl.host.root_sc.mkdir(path)
        fields = [
            ("match.dl_type", "0x800"),
            ("match.nw_proto", "6"),
            ("match.tp_dst", "22"),
            ("action.out", "2"),
            ("priority", "40"),
        ]
        for name, value in fields:
            ctl.host.root_sc.write_text(f"{path}/{name}", value)
            if not batched:
                yc.commit_flow("sw1", "f")
                ctl.run(0.05)
        if batched:
            yc.commit_flow("sw1", "f")
            ctl.run(0.05)
        ctl.run(0.2)
        mods = ctl.drivers[0].flow_mods_sent - sent_before
        rows.append(("batched (1 commit)" if batched else "commit per edit", mods, len(ctl.net.switches["sw1"].table)))
    print_table("A2: flow-mods sent for one 5-field flow", ["strategy", "flow-mods", "hw entries"], rows)
    assert rows[0][1] == 1
    assert rows[1][1] > rows[0][1]
    ctl = YancController(build_linear(1)).start()
    yc = ctl.client()
    counter = iter(range(10**6))
    benchmark(lambda: yc.create_flow("sw1", f"b{next(counter)}", Match(dl_vlan=3), [Output(1)], priority=5))


def test_a3_buffered_vs_full_punts(benchmark):
    """miss_send_len truncation + buffer release vs full frames both ways:
    the buffered design moves far fewer bytes over the control channel."""
    rows = []
    payload = bytes(1400)
    for buffered in (True, False):
        ctl = YancController(build_linear(2)).start()
        switch = ctl.net.switches["sw1"]
        if not buffered:
            switch.num_buffers = 0  # forces full-frame punts
        yc = ctl.client()
        yc.subscribe_events("sw1", "app")
        ctl.run(0.1)
        bytes_before = ctl.host.vfs.counters.get("openflow.tx_bytes")
        host = ctl.net.hosts["h1"]
        from repro.netpkt import MacAddress, ip as _ip

        host.arp_table[_ip("10.0.0.99")] = MacAddress(0x99)  # skip ARP: punt the big frames
        for index in range(10):
            host.send_udp("10.0.0.99", 1, index + 1, payload)
        ctl.run(0.5)
        moved = ctl.host.vfs.counters.get("openflow.tx_bytes") - bytes_before
        events = yc.read_events("sw1", "app")
        rows.append(("buffered (miss_send_len=128)" if buffered else "full-frame punts", moved, len(events)))
    print_table("A3: control-channel bytes for 10 punted 1400B frames", ["mode", "wire bytes", "events"], rows)
    assert rows[0][1] < rows[1][1]
    ctl = YancController(build_linear(2)).start()
    benchmark(lambda: ctl.run(0.01))


def test_a4_device_poll_interval(benchmark):
    """§7.1 devices: shorter polls react faster but burn more RPCs."""
    from repro.distfs import DeviceRuntime, FileServer

    rows = []
    for interval in (0.05, 0.2, 0.8):
        net = build_linear(1)
        master = ControllerHost(net.sim)
        server = FileServer(master.root_sc.spawn(), "/net")
        device = DeviceRuntime(list(net.switches.values())[0], master, server=server, poll_interval=interval).start()
        net.run(1.0)
        yc = master.client()
        calls_before = device.channel.calls
        start = net.sim.now
        yc.create_flow("sw1", "probe", Match(dl_vlan=1), [Output(1)], priority=5)
        while len(net.switches["sw1"].table) == 0 and net.sim.now < start + 10:
            net.run(0.01)
        latency = net.sim.now - start
        net.run(2.0)
        rps = (device.channel.calls - calls_before) / (net.sim.now - start)
        rows.append((f"{interval * 1e3:.0f} ms", f"{latency * 1e3:.0f} ms", f"{rps:.0f}/s"))
    print_table("A4: device poll interval trade-off", ["interval", "apply latency", "RPC rate"], rows)
    latencies = [float(row[1].split()[0]) for row in rows]
    rates = [float(row[2].rstrip("/s")) for row in rows]
    assert latencies[0] < latencies[-1]
    assert rates[0] > rates[-1]
    net = build_linear(1)
    master = ControllerHost(net.sim)
    device = DeviceRuntime(list(net.switches.values())[0], master).start()
    benchmark(device.poll)
