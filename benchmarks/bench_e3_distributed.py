"""E3 — §6: distributed control by layering a remote FS over yanc.

Paper claim (proof of concept): "we mounted NFS on top of yanc and
distributed computational workload among multiple machines."

Reproduced shape:

* control-workload throughput rises with worker count (sub-linearly,
  because every worker pays the remote-FS sync cost);
* the strict-consistency mount pays more RPC time per item than the
  cached mount, so its scaling curve sits strictly below.
"""

from conftest import print_table

from repro.dataplane import Match, Output, build_linear
from repro.distfs import ControllerCluster
from repro.runtime import YancController

WORKER_COUNTS = (1, 2, 4, 8)
N_ITEMS = 48
COMPUTE_COST = 2e-3  # seconds of route computation per item


def _run_sweep(consistency: str) -> list[tuple[int, float, float]]:
    results = []
    for workers in WORKER_COUNTS:
        ctl = YancController(build_linear(3)).start()
        cluster = ControllerCluster(ctl.host, consistency=consistency, cache_ttl=0.5)
        for _ in range(workers):
            cluster.add_worker()

        def work(worker, item):
            switch = f"sw{item % 3 + 1}"
            worker.client.create_flow(switch, f"job_{worker.name}_{item}", Match(dl_vlan=item % 4000), [Output(1)], priority=5)

        makespan = cluster.map_items(list(range(N_ITEMS)), work, compute_cost=COMPUTE_COST)
        ctl.run(0.5)
        installed = sum(len(sw.table) for sw in ctl.net.switches.values())
        assert installed == N_ITEMS, "every remotely-pushed flow must reach hardware"
        results.append((workers, makespan, N_ITEMS / makespan))
    return results


def test_throughput_scales_with_workers(benchmark):
    cached = _run_sweep("cached")
    strict = _run_sweep("strict")
    rows = []
    for (workers, span_c, rate_c), (_w, span_s, rate_s) in zip(cached, strict):
        rows.append(
            (
                workers,
                f"{span_c * 1e3:.1f} ms",
                f"{rate_c:.0f}/s",
                f"{span_s * 1e3:.1f} ms",
                f"{rate_s:.0f}/s",
            )
        )
    print_table(
        f"E3: {N_ITEMS} route computations pushed through a remote /net",
        ["workers", "cached makespan", "cached rate", "strict makespan", "strict rate"],
        rows,
    )
    # throughput strictly increases with machines
    rates = [rate for _w, _s, rate in cached]
    assert rates == sorted(rates)
    assert rates[-1] > 2 * rates[0]
    # consistency costs: strict is never faster than cached
    for (_w, _sc, rate_c), (_w2, _ss, rate_s) in zip(cached, strict):
        assert rate_c >= rate_s
    # time one worker item end to end
    ctl = YancController(build_linear(3)).start()
    cluster = ControllerCluster(ctl.host, consistency="cached")
    worker = cluster.add_worker()
    counter = iter(range(10**6))
    benchmark(
        lambda: worker.client.create_flow("sw1", f"b{next(counter)}", Match(dl_vlan=1), [Output(1)], priority=5)
    )


def test_rpc_cost_dominates_small_items(benchmark):
    """With near-zero compute, adding machines stops helping: the shared
    server's per-RPC latency is the floor (the 'sync cost' crossover)."""
    rows = []
    rates = []
    for workers in WORKER_COUNTS:
        ctl = YancController(build_linear(3)).start()
        # lower per-RPC latency so the shared server's service time is the
        # binding constraint at high worker counts (the crossover)
        cluster = ControllerCluster(ctl.host, consistency="strict", rpc_latency=1e-4)
        for _ in range(workers):
            cluster.add_worker()

        def work(worker, item):
            worker.client.switches()  # one cheap remote read per item

        makespan = cluster.map_items(list(range(N_ITEMS)), work, compute_cost=0.0)
        rows.append((workers, f"{makespan * 1e3:.2f} ms", f"{N_ITEMS / makespan:.0f}/s"))
        rates.append(N_ITEMS / makespan)
    print_table("E3b: RPC-bound workload (no local compute)", ["workers", "makespan", "rate"], rows)
    # speedup from 1 -> 8 machines is bounded by the shared server's
    # service-time floor: clearly sub-linear (< 8x)
    assert rates[-1] / rates[0] < len(WORKER_COUNTS) * 2
    assert rates[-1] / rates[0] < 8
    ctl = YancController(build_linear(2)).start()
    cluster = ControllerCluster(ctl.host, consistency="strict")
    worker = cluster.add_worker()
    benchmark(worker.client.switches)
