"""Fat-tree flow-table benchmark: indexed (tuple-space) vs linear lookup.

Standalone runner (not part of the pytest-benchmark suite):

    PYTHONPATH=src python benchmarks/bench_fattree.py [--quick] [--out F]

Datacenter-scale gate for the indexed :class:`FlowTable`.  A k-ary fat
tree (k=8: 128 hosts, k=16: 1024 hosts) supplies the host population; the
benchmark loads one heavily-trafficked switch's table the way the
reactive router does — thousands of exact-match host-pair entries under a
handful of wildcard tiers (the LLDP punt, subnet ACLs) — then measures

* **packets/sec** — lookups against a mixed hit/miss key stream, and
* **flows installed/sec** — building the table entry by entry,

for the indexed table and for :class:`LinearFlowTable`, the seed
implementation kept as an executable reference model.  Every timed lookup
is also a parity check: both tables must return the *same* winning entry
(or both miss).  Emits ``BENCH_fattree.json``.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from ipaddress import IPv4Network

from repro.dataplane import FlowTable, LinearFlowTable, Match, Output, build_fat_tree
from repro.dataplane.flowtable import FlowEntry
from repro.netpkt.ethernet import ETH_TYPE_IPV4, ETH_TYPE_LLDP
from repro.netpkt.packet import FlowKey

QUICK = {"ks": [8], "flows": {8: 2048}, "lookups": 2000}
FULL = {"ks": [8, 16], "flows": {8: 2048, 16: 8192}, "lookups": 2000}


def build_entries(k: int, n_flows: int, seed: int) -> list[FlowEntry]:
    """A realistic single-switch table at fat-tree scale ``k``.

    Exact-match host-pair routes dominate (the reactive router's output),
    with the LLDP punt and a few CIDR ACL tiers above and between them —
    the wildcard shapes that make tuple-space search earn its keep.
    """
    net = build_fat_tree(k)
    hosts = list(net.hosts.values())
    rng = random.Random(seed)
    entries = [
        FlowEntry(match=Match(dl_type=ETH_TYPE_LLDP), actions=[Output(0xFFFD)], priority=0xFFFF)
    ]
    for index in range(8):
        entries.append(
            FlowEntry(
                match=Match(dl_type=ETH_TYPE_IPV4, nw_dst=IPv4Network(f"10.{index}.0.0/16")),
                actions=[Output(index + 1)],
                priority=0x9000 + index,
            )
        )
    for _ in range(n_flows):
        src, dst = rng.sample(hosts, 2)
        key = FlowKey(dl_src=src.mac, dl_dst=dst.mac, dl_type=ETH_TYPE_IPV4, nw_src=src.ip, nw_dst=dst.ip)
        entries.append(
            FlowEntry(match=Match.exact(key, in_port=rng.randrange(1, k + 1)), actions=[Output(2)])
        )
    return entries


def lookup_keys(entries: list[FlowEntry], n_lookups: int, seed: int) -> list[tuple[FlowKey, int]]:
    """A hit-heavy key stream: 80% installed host pairs, 20% strangers."""
    rng = random.Random(seed)
    exact = [e for e in entries if e.match.dl_src is not None]
    keys = []
    for index in range(n_lookups):
        if index % 5 and exact:
            entry = rng.choice(exact)
            m = entry.match
            keys.append(
                (
                    FlowKey(
                        dl_src=m.dl_src,
                        dl_dst=m.dl_dst,
                        dl_type=m.dl_type,
                        nw_src=m.nw_src.network_address,
                        nw_dst=m.nw_dst.network_address,
                    ),
                    m.in_port,
                )
            )
        else:
            keys.append(
                (
                    FlowKey(dl_src=0x02_99_00_00_00_00 + index, dl_dst=0x02_98_00_00_00_00 + index, dl_type=0x86DD),
                    1,
                )
            )
    return keys


def timed_install(table, entries: list[FlowEntry]) -> float:
    start = time.perf_counter()
    for entry in entries:
        table.install(entry, replace=False)
    return time.perf_counter() - start


def timed_lookups(table, keys: list[tuple[FlowKey, int]]) -> tuple[float, list]:
    winners = []
    start = time.perf_counter()
    for key, in_port in keys:
        winners.append(table.lookup(key, in_port))
    return time.perf_counter() - start, winners


def run_scenario(k: int, n_flows: int, n_lookups: int) -> dict:
    entries = build_entries(k, n_flows, seed=k)
    keys = lookup_keys(entries, n_lookups, seed=k + 1)

    indexed = FlowTable()
    linear = LinearFlowTable()
    indexed_install = timed_install(indexed, entries)
    linear_install = timed_install(linear, entries)

    indexed_time, indexed_winners = timed_lookups(indexed, keys)
    linear_time, linear_winners = timed_lookups(linear, keys)

    # Match-winner parity: identical entry objects (or identical misses)
    # on every single lookup, indexed vs the linear reference model.
    for got, want in zip(indexed_winners, linear_winners):
        assert got is want, f"parity violation: indexed={got} linear={want}"
    hits = sum(1 for w in indexed_winners if w is not None)

    ratio = (n_lookups / indexed_time) / (n_lookups / linear_time)
    return {
        "k": k,
        "hosts": (k**3) // 4,
        "entries": len(entries),
        "lookups": n_lookups,
        "hits": hits,
        "parity_checked": True,
        "packets_per_sec": {
            "indexed": round(n_lookups / indexed_time),
            "linear": round(n_lookups / linear_time),
        },
        "flows_installed_per_sec": {
            "indexed": round(len(entries) / indexed_install),
            "linear": round(len(entries) / linear_install),
        },
        "entries_examined_per_lookup": {
            "indexed": round(indexed.entries_examined / indexed.lookup_count, 2),
            "linear": round(linear.entries_examined / linear.lookup_count, 2),
        },
        "lookup_ratio": round(ratio, 1),
    }


def run(quick: bool) -> dict:
    cfg = QUICK if quick else FULL
    scenarios = [run_scenario(k, cfg["flows"][k], cfg["lookups"]) for k in cfg["ks"]]
    for scenario in scenarios:
        assert scenario["entries"] > 1000, scenario
        assert scenario["lookup_ratio"] >= 10, scenario
    return {
        "benchmark": "fattree",
        "workload": (
            "single-switch table at fat-tree scale: exact host-pair routes under "
            "wildcard tiers; mixed hit/miss lookup stream, indexed vs linear reference"
        ),
        "quick": quick,
        "behavior_parity": "every lookup returns the identical winner in both tables",
        "scenarios": scenarios,
        "min_lookup_ratio": min(s["lookup_ratio"] for s in scenarios),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="k=8 only (CI smoke)")
    parser.add_argument("--out", default="BENCH_fattree.json", help="output JSON path")
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.0,
        help="fail (exit 1) if the worst indexed/linear lookup ratio falls below this",
    )
    args = parser.parse_args(argv)
    result = run(quick=args.quick)
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))
    if args.min_ratio and result["min_lookup_ratio"] < args.min_ratio:
        print(
            f"ratio {result['min_lookup_ratio']} < required {args.min_ratio}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
