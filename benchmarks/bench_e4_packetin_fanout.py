"""E4 — §3.5: packet-in fan-out to per-application private buffers.

Paper design: "Our current design concurrently feeds packet-in messages to
all applications interested in such events", each in its own buffer.

Reproduced shape: delivering one packet-in to N subscribed applications
is O(N) driver-side file *operations*, but the driver preps them all on
its submission ring and crosses the kernel a constant number of times —
so driver syscalls stay flat as subscribers grow; each application sees
exactly its own copy; unsubscribed applications see nothing.
"""

from conftest import print_table

from repro.dataplane import build_linear
from repro.runtime import YancController

APP_COUNTS = (1, 2, 4, 8)


def _controller_with_apps(n_apps: int):
    ctl = YancController(build_linear(2)).start()
    yc = ctl.client()
    for index in range(n_apps):
        yc.subscribe_events("sw1", f"app{index}")
    ctl.run(0.1)
    return ctl, yc


def test_fanout_syscalls_stay_flat_in_subscribers(benchmark):
    rows = []
    per_app_events = 5
    for n_apps in APP_COUNTS:
        ctl, yc = _controller_with_apps(n_apps)
        driver = ctl.drivers[0]
        meter_before = driver.sc.meter.syscalls
        host = ctl.net.hosts["h1"]
        for index in range(per_app_events):
            host.send_udp("10.9.9.9", 1, index + 1, b"miss")
        ctl.run(0.5)
        syscalls = driver.sc.meter.syscalls - meter_before
        delivered = sum(len(yc.read_events("sw1", f"app{index}")) for index in range(n_apps))
        rows.append((n_apps, per_app_events, delivered, syscalls))
        assert delivered == n_apps * per_app_events
    print_table(
        "E4: one packet-in stream fanned out to N app buffers",
        ["apps", "events", "delivered", "driver syscalls"],
        rows,
    )
    # The ring amortizes the fan-out: 8x the subscribers may cost at most a
    # constant factor more kernel crossings, never the unbatched 8x.
    assert rows[-1][3] <= rows[0][3] * 2
    # time one fanout end to end (event write + read back) for 4 apps
    ctl, yc = _controller_with_apps(4)
    seq = iter(range(10**6))

    def one_event():
        n = next(seq)
        yc.write_packet_in("sw1", "app0", n, in_port=1, reason="no_match", buffer_id=0, total_len=0, data=b"x")
        return yc.read_events("sw1", "app0")

    benchmark(one_event)


def test_buffers_isolate_consumption(benchmark):
    ctl, yc = _controller_with_apps(2)
    host = ctl.net.hosts["h1"]
    host.send_udp("10.9.9.9", 1, 2, b"miss")
    ctl.run(0.5)
    # app0 consumes; app1's copy must remain
    assert len(yc.read_events("sw1", "app0")) == 1
    assert len(yc.read_events("sw1", "app1", consume=False)) == 1
    benchmark(lambda: yc.read_events("sw1", "app1", consume=False))


def test_event_latency_through_the_tree(benchmark):
    """Punt-to-application latency via the file system, simulated clock."""
    ctl, yc = _controller_with_apps(1)
    host = ctl.net.hosts["h1"]
    start = ctl.sim.now
    host.send_udp("10.9.9.9", 1, 2, b"miss")
    # run until the event is readable
    deadline = start + 1.0
    while ctl.sim.now < deadline:
        ctl.run(0.0002)
        events = yc.read_events("sw1", "app0", consume=False)
        if events:
            break
    latency = ctl.sim.now - start
    print(f"\npunt -> app buffer latency (simulated): {latency * 1e3:.2f} ms")
    assert latency < 0.05
    benchmark(lambda: yc.read_events("sw1", "app0", consume=False))
