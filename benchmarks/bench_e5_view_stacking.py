"""E5 — §4.2: views stack arbitrarily.

Paper design: "views can be stacked arbitrarily on top of one another to
facilitate any logical topology and federated control."

Reproduced shape: a flow committed at stacking depth d crosses d slicer
translations before reaching hardware; the added cost per layer is
roughly constant (linear total in depth), and the headerspace of every
layer is enforced on the final installed match.
"""

from ipaddress import IPv4Network

from conftest import print_table

from repro.dataplane import Match, Output, build_linear
from repro.runtime import YancController
from repro.views import Slicer
from repro.yancfs import YancClient

DEPTHS = (0, 1, 2, 3, 4)


def _build_stack(depth: int):
    """A chain of views, each narrowing the destination prefix."""
    ctl = YancController(build_linear(2)).start()
    root = "/net"
    for level in range(depth):
        prefix = 8 + 4 * level
        Slicer(
            ctl.host.process(),
            ctl.sim,
            view=f"v{level}",
            switches=["sw1"],
            headerspace=Match(dl_type=0x0800, nw_dst=IPv4Network(f"10.0.0.0/{prefix}")),
            root=root,
        ).start()
        ctl.run(0.1)
        root = f"{root}/views/v{level}"
    return ctl, YancClient(ctl.host.process(), root)


def _install_and_measure(ctl, client) -> tuple[float, int]:
    """Commit a flow at the innermost level; time until it's on hardware.

    Polls at 20 microseconds so per-layer translation hops (tens of
    microseconds each) are resolvable against the control-channel latency.
    """
    switch = ctl.net.switches["sw1"]
    before_entries = len(switch.table)
    before_events = ctl.sim.dispatched
    start = ctl.sim.now
    client.create_flow("sw1", "probe", Match(nw_dst=IPv4Network("10.0.0.64/26")), [Output(1)], priority=5)
    deadline = start + 5.0
    while ctl.sim.now < deadline and len(switch.table) == before_entries:
        ctl.run(2e-5)
    assert len(switch.table) > before_entries, "flow never reached hardware"
    return ctl.sim.now - start, ctl.sim.dispatched - before_events


def test_stacked_views_translate_layer_by_layer(benchmark):
    rows = []
    latencies = []
    event_counts = []
    for depth in DEPTHS:
        ctl, client = _build_stack(depth)
        latency, events = _install_and_measure(ctl, client)
        latencies.append(latency)
        event_counts.append(events)
        # the installed master flow carries every layer's constraint
        master = ctl.client()
        names = [n for n in master.flows("sw1") if "probe" in n]
        spec = master.read_flow("sw1", names[0])
        assert spec.match.nw_dst == IPv4Network("10.0.0.64/26")
        assert spec.match.dl_type == (0x0800 if depth else None)
        rows.append((depth, names[0], f"{latency * 1e6:.0f} us", events))
    print_table(
        "E5: flow install latency vs view stacking depth",
        ["depth", "installed as", "latency", "sim events"],
        rows,
    )
    # deeper stacks cost more: one translation hop per layer
    assert latencies == sorted(latencies)
    assert latencies[4] > latencies[0]
    assert event_counts == sorted(event_counts)
    # time a depth-2 commit end to end
    ctl, client = _build_stack(2)
    benchmark(lambda: _install_and_measure(ctl, _fresh(client)))


_counter = iter(range(10**6))


def _fresh(client):
    """A client whose probe flow is unique per benchmark round.

    Both the name and the priority vary so successive rounds create new
    hardware entries instead of replacing the previous one.
    """

    class _Wrapper:
        def create_flow(self, switch, _name, match, actions, **kwargs):
            index = next(_counter)
            kwargs["priority"] = 5 + index % 1000
            return client.create_flow(switch, f"probe{index}", match, actions, **kwargs)

    return _Wrapper()


def test_out_of_headerspace_rejected_at_the_offending_layer(benchmark):
    ctl, client = _build_stack(2)
    client.create_flow("sw1", "escape", Match(nw_dst=IPv4Network("172.16.0.0/16")), [Output(1)], priority=5)
    ctl.run(0.5)
    status = client.sc.read_text(client.flow_path("sw1", "escape") + "/state.status")
    assert status.startswith("rejected")
    master_flows = ctl.client().flows("sw1")
    assert not any("escape" in name for name in master_flows)
    benchmark(lambda: client.sc.read_text(client.flow_path("sw1", "escape") + "/state.status"))
