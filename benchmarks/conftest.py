"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one artifact from the experiment index
in DESIGN.md (figures F1-F3, experiments E1-E10).  Benchmarks both *time*
representative operations (pytest-benchmark) and *print* the table/series
the paper's claim is about, asserting its shape.
"""

from __future__ import annotations


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Print a fixed-width results table to the benchmark log."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) for i, h in enumerate(headers)]
    line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(v).rjust(w) for v, w in zip(row, widths)))
